package shuffle

// Store rebalance for elastic worlds (DESIGN.md §15): when the collective
// group changes shape outside the failure path — a joiner arrived mid-run —
// the local-family strategies must restore the invariant the exchange
// scheduler and the iteration-count derivation rely on: every group member
// holds a balanced, disjoint share of the surviving samples. Rebalance
// computes a deterministic target partition of whatever currently survives
// (a degraded world may have lost the dead ranks' unexchanged samples) and
// ships exactly the samples that are on the wrong rank, point-to-point on a
// dedicated tag space.

import (
	"fmt"
	"sort"

	"plshuffle/internal/data"
	"plshuffle/internal/mpi"
	"plshuffle/internal/rng"
	"plshuffle/internal/store"
)

// saltRebalance keeps the rebalance target permutation off every other
// random stream of the scheme (see the salt table in partition.go).
const saltRebalance uint64 = 0x4eba

// rebalanceTag is the user-tag space for rebalance sample traffic. It sits
// above both the exchange tags (= epoch, < 2^20) and the checkpoint/join
// tags so concurrent epochs can never alias it.
func rebalanceTag(epoch int) int { return 1<<23 + epoch }

// RebalanceStats reports what one rank's share of a rebalance moved.
type RebalanceStats struct {
	Sent, Received       int
	SentBytes, RecvBytes int64
	// Total is the number of surviving samples across the group — the
	// conservation denominator every member agreed on.
	Total int
}

// Rebalance redistributes the group's stored samples to a deterministic
// balanced partition: gather every member's current ID set (one
// AllgatherVarLen), shuffle the union with a stream shared via (seed,
// epoch), cut it into GroupSize near-equal chunks in group order, and ship
// each misplaced sample from its holder to its target. Receives complete
// before deletes, mirroring the exchange's receive-before-remove storage
// discipline, so the transient peak is bounded by the old share plus the
// incoming one.
//
// Every member must call Rebalance with the same (seed, epoch) at a
// quiescent point — no exchange window open, no collective in flight. A
// joiner with an empty store participates like any member and receives its
// full share. Duplicate holdings, missing holders, or a post-transfer
// mismatch with the target are errors (the conservation check).
func Rebalance(c *mpi.Comm, st *store.Local, seed uint64, epoch int) (RebalanceStats, error) {
	var stats RebalanceStats
	group := c.GroupRanks()
	mine := st.IDs()
	all := mpi.AllgatherVarLen(c, mine)

	holder := make(map[int]int)
	for _, r := range group {
		for _, id := range all[r] {
			if prev, dup := holder[id]; dup {
				return stats, fmt.Errorf("shuffle: Rebalance: sample %d held by both rank %d and rank %d", id, prev, r)
			}
			holder[id] = r
		}
	}
	total := len(holder)
	if total == 0 {
		return stats, fmt.Errorf("shuffle: Rebalance: no samples survive in the group")
	}
	if total < len(group) {
		return stats, fmt.Errorf("shuffle: Rebalance: %d samples over %d members", total, len(group))
	}
	stats.Total = total

	// Deterministic target: sorted union, shared-stream shuffle, contiguous
	// cut in group order (first total%m members take one extra). Identical
	// inputs on every member ⇒ identical plan, no further coordination.
	ids := make([]int, 0, total)
	for id := range holder {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	rng.NewStream(seed, saltRebalance, uint64(epoch)).Shuffle(len(ids), func(i, j int) {
		ids[i], ids[j] = ids[j], ids[i]
	})
	m := len(group)
	base, extra := total/m, total%m
	dest := make(map[int]int, total)
	var target []int
	off := 0
	for gi, r := range group {
		size := base
		if gi < extra {
			size++
		}
		for _, id := range ids[off : off+size] {
			dest[id] = r
		}
		if r == c.Rank() {
			target = append([]int(nil), ids[off:off+size]...)
			sort.Ints(target)
		}
		off += size
	}

	// Ship what is misplaced; count what must arrive. All traffic rides one
	// epoch-scoped tag, so receives can be ANY_SOURCE.
	tag := rebalanceTag(epoch)
	var sendIDs []int
	for _, id := range mine {
		if dest[id] == c.Rank() {
			continue
		}
		s, err := st.Get(id)
		if err != nil {
			return stats, fmt.Errorf("shuffle: Rebalance: %w", err)
		}
		c.Isend(dest[id], tag, s.Encode())
		sendIDs = append(sendIDs, id)
		stats.Sent++
		stats.SentBytes += s.Bytes
	}
	var recvReqs []*mpi.Request
	for _, id := range target {
		if !st.Has(id) {
			recvReqs = append(recvReqs, c.Irecv(mpi.AnySource, tag))
		}
	}
	for _, req := range recvReqs {
		payload, _ := req.Wait()
		s, err := data.DecodeSample(payload.([]byte))
		if err != nil {
			return stats, fmt.Errorf("shuffle: Rebalance: decoding received sample: %w", err)
		}
		if err := st.Put(s); err != nil {
			return stats, fmt.Errorf("shuffle: Rebalance: storing sample %d: %w", s.ID, err)
		}
		stats.Received++
		stats.RecvBytes += s.Bytes
	}
	for _, id := range sendIDs {
		if err := st.Delete(id); err != nil {
			return stats, fmt.Errorf("shuffle: Rebalance: %w", err)
		}
	}

	// Conservation: this rank must now hold exactly its target share.
	got := st.IDs()
	if len(got) != len(target) {
		return stats, fmt.Errorf("shuffle: Rebalance: rank %d holds %d samples after rebalance, want %d", c.Rank(), len(got), len(target))
	}
	for i := range got {
		if got[i] != target[i] {
			return stats, fmt.Errorf("shuffle: Rebalance: rank %d holds sample %d where target expects %d", c.Rank(), got[i], target[i])
		}
	}
	return stats, nil
}
