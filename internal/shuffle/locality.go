package shuffle

import (
	"fmt"
	"sort"

	"plshuffle/internal/rng"
)

// PartitionWithLocality splits n samples across m workers like Partition,
// but with a tunable class-locality bias. locality = 0 reproduces the
// uniform random permutation of Figure 2; locality = 1 cuts a fully
// class-sorted order into contiguous chunks, giving each worker only
// ~C/M classes.
//
// Why this knob exists: the synthetic proxy datasets are Gaussian, so a
// uniformly random shard of even 64 samples has nearly global statistics —
// unlike a 292-sample shard of a real image dataset, whose statistics
// through a deep network diverge strongly from the global distribution.
// Class-locality is how that divergence is calibrated (DESIGN.md §2): it
// models both the heavy-tailed clustering of real data and the
// class-major storage layouts (ImageFolder directories, tar/WebDataset
// shards) from which node-local staging actually copies contiguous ranges.
// The local-shuffling accuracy experiments sweep this knob; partial local
// shuffling's exchange progressively re-randomizes the shards regardless
// of the initial locality, which is precisely the paper's recovery
// mechanism.
func PartitionWithLocality(labels []int, m int, locality float64, seed uint64) ([][]int, error) {
	n := len(labels)
	if n == 0 || m <= 0 {
		return nil, fmt.Errorf("shuffle: PartitionWithLocality(n=%d, m=%d): arguments must be positive", n, m)
	}
	if m > n {
		return nil, fmt.Errorf("shuffle: PartitionWithLocality(n=%d, m=%d): more workers than samples", n, m)
	}
	if locality < 0 || locality > 1 {
		return nil, fmt.Errorf("shuffle: PartitionWithLocality: locality %v out of [0,1]", locality)
	}
	r := rng.NewStream(seed, saltPartition)
	randPerm := r.Perm(n)

	// Rank of each id in the class-sorted order (by label, then id).
	sortedIDs := make([]int, n)
	for i := range sortedIDs {
		sortedIDs[i] = i
	}
	sort.Slice(sortedIDs, func(a, b int) bool {
		ia, ib := sortedIDs[a], sortedIDs[b]
		if labels[ia] != labels[ib] {
			return labels[ia] < labels[ib]
		}
		return ia < ib
	})
	sortedRank := make([]float64, n)
	for pos, id := range sortedIDs {
		sortedRank[id] = float64(pos)
	}
	randRank := make([]float64, n)
	for pos, id := range randPerm {
		randRank[id] = float64(pos)
	}

	// Blend the two orders: each sample's position key interpolates between
	// its random rank and its class-sorted rank.
	type keyed struct {
		id  int
		key float64
	}
	keys := make([]keyed, n)
	for id := 0; id < n; id++ {
		keys[id] = keyed{id: id, key: locality*sortedRank[id] + (1-locality)*randRank[id]}
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].key != keys[b].key {
			return keys[a].key < keys[b].key
		}
		return keys[a].id < keys[b].id
	})

	out := make([][]int, m)
	base := n / m
	extra := n % m
	off := 0
	for w := 0; w < m; w++ {
		size := base
		if w < extra {
			size++
		}
		part := make([]int, size)
		for i := 0; i < size; i++ {
			part[i] = keys[off+i].id
		}
		out[w] = part
		off += size
	}
	return out, nil
}

// ShardClassCoverage reports, for each shard, the fraction of all classes
// present in it — the diagnostic used by the locality ablation.
func ShardClassCoverage(parts [][]int, labels []int, classes int) []float64 {
	out := make([]float64, len(parts))
	for w, part := range parts {
		seen := make([]bool, classes)
		count := 0
		for _, id := range part {
			if c := labels[id]; !seen[c] {
				seen[c] = true
				count++
			}
		}
		out[w] = float64(count) / float64(classes)
	}
	return out
}
