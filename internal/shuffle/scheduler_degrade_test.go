package shuffle

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"plshuffle/internal/mpi"
	"plshuffle/internal/store"
	"plshuffle/internal/transport"
)

// killComm abruptly removes the rank from its world (fault injection).
func killComm(t *testing.T, c *mpi.Comm) {
	t.Helper()
	k, ok := c.Transport().(transport.Killer)
	if !ok {
		t.Fatalf("transport %T does not implement Killer", c.Transport())
	}
	k.Kill()
}

// TestExpectedSendersInvertsPlans: the locally computable sender table must
// be the exact inverse of the shared-seed destination permutations, for
// both the flat and the hierarchical planner.
func TestExpectedSendersInvertsPlans(t *testing.T) {
	const n, seed = 240, 77
	for _, tc := range []struct {
		size, groupSize int
	}{
		{4, 0}, {7, 0}, {1, 0}, {8, 4}, {6, 2},
	} {
		for epoch := 0; epoch < 3; epoch++ {
			ids := make([]int, n/tc.size+1)
			plans := make([]ExchangePlan, tc.size)
			for r := range plans {
				for j := range ids {
					ids[j] = j
				}
				var err error
				if tc.groupSize > 0 {
					plans[r], err = PlanExchangeHierarchical(r, tc.size, tc.groupSize, ids, 0.5, n, seed, epoch)
				} else {
					plans[r], err = PlanExchange(r, tc.size, ids, 0.5, n, seed, epoch)
				}
				if err != nil {
					t.Fatal(err)
				}
			}
			k := plans[0].Slots()
			for d := 0; d < tc.size; d++ {
				senders := ExpectedSenders(d, tc.size, tc.groupSize, k, seed, epoch)
				for i := 0; i < k; i++ {
					// Brute-force: the unique rank whose slot-i destination is d.
					want := -1
					for s := 0; s < tc.size; s++ {
						if plans[s].Dests[i] == d {
							want = s
							break
						}
					}
					if senders[i] != want {
						t.Fatalf("size=%d gs=%d epoch=%d: ExpectedSenders(%d)[%d]=%d, want %d",
							tc.size, tc.groupSize, epoch, d, i, senders[i], want)
					}
				}
			}
		}
	}
}

// survivorConservation asserts that every sample a survivor held before the
// run is present on exactly one survivor after it, and that no sample is
// duplicated across survivors. Samples that lived only on the dead rank may
// be lost (they died with it) but must never be duplicated.
func survivorConservation(t *testing.T, stores []*store.Local, dead int, heldBefore map[int]bool) {
	t.Helper()
	seen := map[int]int{}
	for r, st := range stores {
		if r == dead {
			continue
		}
		for _, id := range st.IDs() {
			seen[id]++
			if seen[id] > 1 {
				t.Fatalf("sample %d present on two survivors", id)
			}
		}
	}
	for id := range heldBefore {
		if seen[id] != 1 {
			t.Fatalf("survivor-held sample %d lost (count %d)", id, seen[id])
		}
	}
}

// TestDegradeKillBeforeEpoch: the dead rank is known before the exchange
// starts; survivors must complete the epoch with exactly the degraded
// expectation, retain the slots aimed at the dead rank, and report
// EffectiveQ < Q.
func TestDegradeKillBeforeEpoch(t *testing.T) {
	const n, m, q, seed, deadRank = 160, 4, 0.5, 99, 3
	stores, _ := mkStores(t, n, m, seed, 0)

	heldBefore := map[int]bool{}
	for r, st := range stores {
		if r == deadRank {
			continue
		}
		for _, id := range st.IDs() {
			heldBefore[id] = true
		}
	}
	initialLen := make([]int, m)
	for r, st := range stores {
		initialLen[r] = st.Len()
	}

	type report struct {
		degSend, degRecv int
		effQ             float64
		slots            int
		peak             int64
	}
	reports := make([]report, m)

	err := mpi.Run(m, func(c *mpi.Comm) error {
		if c.Rank() == deadRank {
			killComm(t, c)
			return nil
		}
		for len(c.FailedPeers()) == 0 {
			time.Sleep(time.Millisecond)
		}
		sched, err := NewScheduler(c, stores[c.Rank()], q, n, seed)
		if err != nil {
			return err
		}
		sched.SetDegradeOnPeerFailure(true)
		for e := 0; e < 3; e++ {
			if err := sched.Scheduling(e); err != nil {
				return err
			}
			if err := sched.Synchronize(); err != nil {
				return err
			}
			if e == 0 {
				ds, dr := sched.DegradedSlots()
				reports[c.Rank()] = report{ds, dr, sched.EffectiveQ(), sched.Slots(), 0}
			}
			if err := sched.CleanLocalStorage(); err != nil {
				return err
			}
		}
		reports[c.Rank()].peak = stores[c.Rank()].Peak()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	for r := 0; r < m; r++ {
		if r == deadRank {
			continue
		}
		rep := reports[r]
		// Exact expected degradation from the shared-seed permutations:
		// inbound slots whose sender is the dead rank, and outbound slots
		// whose destination is the dead rank (= slots where this rank is
		// the dead rank's expected sender).
		wantRecv := 0
		for _, s := range ExpectedSenders(r, m, 0, rep.slots, seed, 0) {
			if s == deadRank {
				wantRecv++
			}
		}
		wantSend := 0
		for _, s := range ExpectedSenders(deadRank, m, 0, rep.slots, seed, 0) {
			if s == r {
				wantSend++
			}
		}
		if rep.degRecv != wantRecv {
			t.Errorf("rank %d: DegradedSlots recv = %d, want %d", r, rep.degRecv, wantRecv)
		}
		if rep.degSend != wantSend {
			t.Errorf("rank %d: DegradedSlots send = %d, want %d", r, rep.degSend, wantSend)
		}
		if rep.degSend+rep.degRecv > 0 && rep.effQ >= q {
			t.Errorf("rank %d: EffectiveQ = %v, want < %v", r, rep.effQ, q)
		}
		// Peak storage stays within the (1+Q)·N/M discipline: at most the
		// initial residency plus one full exchange's worth of receives
		// (Peak counts bytes; mkStores uses 10-byte samples).
		const sampleBytes = 10
		if rep.peak > int64((initialLen[r]+rep.slots)*sampleBytes) {
			t.Errorf("rank %d: peak %d bytes exceeds (initial %d + slots %d) samples", r, rep.peak, initialLen[r], rep.slots)
		}
	}
	survivorConservation(t, stores, deadRank, heldBefore)
}

// TestDegradeKillMidEpoch: the rank dies after shipping part of its epoch
// traffic. Survivors absorb the death mid-drain, accept the straggler
// samples that landed before it, and complete this and subsequent epochs
// without losing or duplicating any survivor-held sample.
func TestDegradeKillMidEpoch(t *testing.T) {
	const n, m, q, seed, deadRank = 200, 4, 0.6, 1234, 2
	stores, _ := mkStores(t, n, m, seed, 0)

	heldBefore := map[int]bool{}
	for r, st := range stores {
		if r == deadRank {
			continue
		}
		for _, id := range st.IDs() {
			heldBefore[id] = true
		}
	}

	var sawDegradation atomic.Bool
	err := mpi.Run(m, func(c *mpi.Comm) error {
		sched, err := NewScheduler(c, stores[c.Rank()], q, n, seed)
		if err != nil {
			return err
		}
		sched.SetDegradeOnPeerFailure(true)
		if c.Rank() == deadRank {
			// Ship a few slots, then die abruptly mid-Communicate. The
			// count is kept below any survivor's inbound expectation from
			// this rank, so every survivor is guaranteed to block in
			// Synchronize and absorb the death before its epoch commits.
			if err := sched.Scheduling(0); err != nil {
				return err
			}
			if _, err := sched.Communicate(3); err != nil {
				return err
			}
			killComm(t, c)
			return nil
		}
		for e := 0; e < 3; e++ {
			if err := sched.Scheduling(e); err != nil {
				return err
			}
			// Chunked posting so the death interleaves with live traffic.
			for posted := 0; posted < sched.Slots(); posted += 7 {
				if _, err := sched.Communicate(7); err != nil {
					return err
				}
			}
			if err := sched.Synchronize(); err != nil {
				return err
			}
			ds, dr := sched.DegradedSlots()
			if ds+dr > 0 {
				sawDegradation.Store(true)
				if sched.EffectiveQ() >= q {
					return fmt.Errorf("rank %d epoch %d: EffectiveQ %v not reduced", c.Rank(), e, sched.EffectiveQ())
				}
			}
			if err := sched.CleanLocalStorage(); err != nil {
				return err
			}
		}
		if got := sched.DeadRanks(); len(got) != 1 || got[0] != deadRank {
			return fmt.Errorf("rank %d: DeadRanks = %v, want [%d]", c.Rank(), got, deadRank)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawDegradation.Load() {
		t.Fatal("no rank observed any degraded slots; the kill did not bite")
	}
	survivorConservation(t, stores, deadRank, heldBefore)
}

// TestSchedulerResetAfterFailedEpoch: a failed (abandoned) epoch must leave
// the scheduler re-schedulable via Reset, with the local stores untouched —
// the cleanly-poisoned contract.
func TestSchedulerResetAfterFailedEpoch(t *testing.T) {
	const n, m, q, seed = 80, 2, 0.5, 5
	stores, _ := mkStores(t, n, m, seed, 0)
	before := make([][]int, m)
	for r, st := range stores {
		before[r] = append([]int(nil), st.IDs()...)
	}
	err := mpi.Run(m, func(c *mpi.Comm) error {
		sched, err := NewScheduler(c, stores[c.Rank()], q, n, seed)
		if err != nil {
			return err
		}
		// Start epoch 0 and post part of it, then abandon: the epoch's
		// frames rot in per-epoch tag space and nothing was deleted.
		if err := sched.Scheduling(0); err != nil {
			return err
		}
		if _, err := sched.Communicate(3); err != nil {
			return err
		}
		if err := sched.Scheduling(1); err == nil {
			return fmt.Errorf("Scheduling(1) succeeded over an unfinished epoch")
		}
		sched.Reset()
		// After Reset the scheduler is idle again: a full epoch runs clean.
		if err := sched.Scheduling(1); err != nil {
			return fmt.Errorf("Scheduling after Reset: %w", err)
		}
		if err := sched.Synchronize(); err != nil {
			return err
		}
		return sched.CleanLocalStorage()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Conservation across the abandoned epoch + the clean one: the union of
	// both stores is still the whole dataset, no duplicates. (Counts can
	// shift between ranks only via the clean epoch's balanced exchange, so
	// per-rank counts are preserved.)
	perWorker := []int{len(before[0]), len(before[1])}
	checkConservation(t, stores, n, perWorker)
}

// TestDegradeHierarchical: the degradation path must also work under the
// two-level exchange (its sender table inverts both permutation levels).
func TestDegradeHierarchical(t *testing.T) {
	const n, m, gs, q, seed, deadRank = 240, 6, 3, 0.4, 31, 4
	stores, _ := mkStores(t, n, m, seed, 0)
	heldBefore := map[int]bool{}
	for r, st := range stores {
		if r == deadRank {
			continue
		}
		for _, id := range st.IDs() {
			heldBefore[id] = true
		}
	}
	err := mpi.Run(m, func(c *mpi.Comm) error {
		if c.Rank() == deadRank {
			killComm(t, c)
			return nil
		}
		for len(c.FailedPeers()) == 0 {
			time.Sleep(time.Millisecond)
		}
		sched, err := NewScheduler(c, stores[c.Rank()], q, n, seed)
		if err != nil {
			return err
		}
		if err := sched.UseHierarchical(gs); err != nil {
			return err
		}
		sched.SetDegradeOnPeerFailure(true)
		for e := 0; e < 2; e++ {
			if err := sched.Scheduling(e); err != nil {
				return err
			}
			if err := sched.Synchronize(); err != nil {
				return err
			}
			if err := sched.CleanLocalStorage(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	survivorConservation(t, stores, deadRank, heldBefore)
}
