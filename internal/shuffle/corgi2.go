package shuffle

import (
	"fmt"

	"plshuffle/internal/rng"
	"plshuffle/internal/store/shard"
)

// Corgi² stream salts (disjoint from the partition/exchange salts above):
// the offline chunk-level reassignment, the per-epoch shard order, and the
// within-window sample shuffle each draw from their own stream.
const (
	saltCorgiAssign uint64 = 0xc047
	saltCorgiShards uint64 = 0xc042
	saltCorgiOrder  uint64 = 0xc04d
)

// Corgi2Assign computes the offline chunk-level reshuffle for an epoch
// group: a seeded permutation of all shard IDs cut into m contiguous
// chunks, exactly Partition's shape one level up the hierarchy. Between
// groups the permutation changes, so shards migrate across workers — the
// "offline shuffle" half of Corgi², whose cost is the PFS refetch of newly
// assigned shards rather than a peer exchange.
//
// Every rank calling Corgi2Assign with the same arguments computes the same
// assignment, so the reshuffle needs no communication.
func Corgi2Assign(numShards, m int, seed uint64, group int) ([][]int, error) {
	if numShards <= 0 || m <= 0 {
		return nil, fmt.Errorf("shuffle: Corgi2Assign(shards=%d, m=%d): arguments must be positive", numShards, m)
	}
	if m > numShards {
		return nil, fmt.Errorf("shuffle: Corgi2Assign(shards=%d, m=%d): more workers than shards", numShards, m)
	}
	perm := rng.NewStream(seed, saltCorgiAssign, uint64(group)).Perm(numShards)
	out := make([][]int, m)
	base := numShards / m
	extra := numShards % m
	off := 0
	for r := 0; r < m; r++ {
		size := base
		if r < extra {
			size++
		}
		out[r] = append([]int(nil), perm[off:off+size]...)
		off += size
	}
	return out, nil
}

// Corgi2Plan is one rank's epoch read plan: the shard windows to pin in
// sequence, the boundaries of each window in the sample order, and the
// fully resolved sample order itself. It is a pure function of
// (seed, epoch, rank, assignment, window size) — cache state never feeds
// back into it, which is what keeps Corgi² training bitwise deterministic.
type Corgi2Plan struct {
	Windows [][]int
	Bounds  []int // len(Windows)+1; Bounds[w] = index in Order where window w starts
	Order   []shard.Ref
}

// Corgi2EpochPlan builds the online-shuffle plan for one rank and epoch:
// the rank's assigned shards are visited in a fresh per-epoch order, cut
// into windows of at most window shards, and within each window every
// sample is shuffled — Corgi²'s in-memory shuffle, whose mixing radius is
// the window (the cache budget) rather than a single shard.
func Corgi2EpochPlan(assigned []int, counts func(shardID int) int, window int, seed uint64, epoch, rank int) Corgi2Plan {
	shards := append([]int(nil), assigned...)
	r := rng.NewStream(seed, saltCorgiShards, uint64(epoch), uint64(rank))
	r.Shuffle(len(shards), func(i, j int) { shards[i], shards[j] = shards[j], shards[i] })
	if window <= 0 || window > len(shards) {
		window = len(shards)
	}
	var plan Corgi2Plan
	plan.Bounds = append(plan.Bounds, 0)
	for w := 0; w*window < len(shards); w++ {
		lo := w * window
		hi := lo + window
		if hi > len(shards) {
			hi = len(shards)
		}
		win := shards[lo:hi]
		start := len(plan.Order)
		for _, sh := range win {
			for i := 0; i < counts(sh); i++ {
				plan.Order = append(plan.Order, shard.Ref{Shard: sh, Index: i})
			}
		}
		seg := plan.Order[start:]
		wr := rng.NewStream(seed, saltCorgiOrder, uint64(epoch), uint64(rank), uint64(w))
		wr.Shuffle(len(seg), func(i, j int) { seg[i], seg[j] = seg[j], seg[i] })
		plan.Windows = append(plan.Windows, append([]int(nil), win...))
		plan.Bounds = append(plan.Bounds, len(plan.Order))
	}
	return plan
}
