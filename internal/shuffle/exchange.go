package shuffle

import (
	"fmt"

	"plshuffle/internal/data"
	"plshuffle/internal/mpi"
	"plshuffle/internal/rng"
)

// ExchangePlan is one worker's view of one epoch's global exchange
// (Algorithm 1): for each slot i, send local sample SendIDs[i] to rank
// Dests[i]. Because Dests[i] is this worker's entry in a permutation of all
// ranks shared (via the seed) by every worker, each rank sends and receives
// exactly one sample per slot — the balanced communication property of
// Section III-B.
type ExchangePlan struct {
	Epoch   int
	SendIDs []int
	Dests   []int
}

// Slots returns the number of exchange rounds in the plan.
func (p ExchangePlan) Slots() int { return len(p.SendIDs) }

// PlanExchange computes rank's exchange plan for an epoch.
//
// Following Algorithm 1: p ← a random permutation of the local samples
// (each worker's private stream, so the exchanged samples are themselves
// randomized); for each slot i, dest ← the rank's entry in a shared-seed
// random permutation of all ranks (one permutation per (epoch, slot)).
//
// totalN and size determine the shared slot count via Slots(q, totalN,
// size); localIDs is this worker's current local sample set. A plan is
// valid only if the worker holds at least Slots samples, which the
// (1+Q)·N/M storage scheme guarantees.
func PlanExchange(rank, size int, localIDs []int, q float64, totalN int, seed uint64, epoch int) (ExchangePlan, error) {
	if rank < 0 || rank >= size {
		return ExchangePlan{}, fmt.Errorf("shuffle: PlanExchange: rank %d out of [0,%d)", rank, size)
	}
	if q < 0 || q > 1 {
		return ExchangePlan{}, fmt.Errorf("shuffle: PlanExchange: fraction %v out of [0,1]", q)
	}
	k := Slots(q, totalN, size)
	if k > len(localIDs) {
		return ExchangePlan{}, fmt.Errorf("shuffle: PlanExchange: %d slots but only %d local samples on rank %d", k, len(localIDs), rank)
	}
	plan := ExchangePlan{Epoch: epoch, SendIDs: make([]int, k), Dests: make([]int, k)}
	if k == 0 {
		return plan, nil
	}
	// Line 1: p <- random permutation of the local samples (private stream).
	p := rng.NewStream(seed, saltSend, uint64(epoch), uint64(rank)).Perm(len(localIDs))
	// Lines 2-4: per-slot shared destination permutation of all ranks.
	destPerm := make([]int, size)
	for i := 0; i < k; i++ {
		rng.NewStream(seed, saltDest, uint64(epoch), uint64(i)).PermInto(destPerm)
		plan.SendIDs[i] = localIDs[p[i]]
		plan.Dests[i] = destPerm[rank]
	}
	return plan, nil
}

// ExchangeResult reports what one epoch's exchange moved.
type ExchangeResult struct {
	SentIDs  []int
	Received []data.Sample
}

// Execute runs the plan synchronously over the communicator: it posts all
// non-blocking sends and ANY_SOURCE receives (lines 4-5 of Algorithm 1),
// then waits for completion (line 7). lookup resolves a local sample ID to
// its sample (typically store.Local.Get). The per-epoch message tag keeps
// epochs separated.
//
// Execute is the bulk (non-overlapped) variant; the Scheduler chunk-wise
// variant interleaves the same traffic with training iterations.
func (p ExchangePlan) Execute(c *mpi.Comm, lookup func(id int) (data.Sample, error)) (ExchangeResult, error) {
	res := ExchangeResult{SentIDs: append([]int(nil), p.SendIDs...)}
	recvReqs := make([]*mpi.Request, p.Slots())
	for i, id := range p.SendIDs {
		s, err := lookup(id)
		if err != nil {
			return ExchangeResult{}, fmt.Errorf("shuffle: Execute: looking up sample %d: %w", id, err)
		}
		c.Isend(p.Dests[i], exchangeTag(p.Epoch), s.Encode())
		recvReqs[i] = c.Irecv(mpi.AnySource, exchangeTag(p.Epoch))
	}
	for _, req := range recvReqs {
		payload, _ := req.Wait()
		s, err := data.DecodeSample(payload.([]byte))
		if err != nil {
			return ExchangeResult{}, fmt.Errorf("shuffle: Execute: decoding received sample: %w", err)
		}
		res.Received = append(res.Received, s)
	}
	return res, nil
}

// exchangeTag is the user-level tag for epoch's sample exchange traffic.
func exchangeTag(epoch int) int { return epoch }

// ExpectedSenders computes, for every slot of an epoch's exchange, the rank
// that sends toward rank — the inverse of the shared-seed destination
// permutations. Because every worker derives the same per-slot permutation
// from the seed, the sender set is locally computable: no consensus round is
// needed when a failure forces the receive expectation to be rebuilt (the
// graceful-degradation path). groupSize 0 selects the flat exchange,
// matching PlanExchange; a positive groupSize matches
// PlanExchangeHierarchical.
func ExpectedSenders(rank, size, groupSize, slots int, seed uint64, epoch int) []int {
	senders := make([]int, slots)
	if groupSize > 0 {
		groups := size / groupSize
		groupPerm := make([]int, groups)
		intraPerm := make([]int, groupSize)
		for i := 0; i < slots; i++ {
			rng.NewStream(seed, saltGroupDest, uint64(epoch), uint64(i)).PermInto(groupPerm)
			rng.NewStream(seed, saltIntraDest, uint64(epoch), uint64(i)).PermInto(intraPerm)
			// dest(r) = groupPerm[r/gs]*gs + intraPerm[r%gs]; invert both levels.
			sg, si := -1, -1
			for g, dg := range groupPerm {
				if dg == rank/groupSize {
					sg = g
					break
				}
			}
			for l, dl := range intraPerm {
				if dl == rank%groupSize {
					si = l
					break
				}
			}
			senders[i] = sg*groupSize + si
		}
		return senders
	}
	destPerm := make([]int, size)
	for i := 0; i < slots; i++ {
		rng.NewStream(seed, saltDest, uint64(epoch), uint64(i)).PermInto(destPerm)
		for s, d := range destPerm {
			if d == rank {
				senders[i] = s
				break
			}
		}
	}
	return senders
}

// PlanExchangeUnbalanced is the ablation baseline (DESIGN.md §5): each
// worker draws destinations uniformly at random from its own private
// stream, as a naive implementation (and the prior systems the paper cites,
// whose exchange split "is itself random") would. Send counts remain k per
// worker but receive counts become multinomial — workers can no longer post
// a fixed number of receives, so the scheme needs an extra metadata round
// and produces unbalanced storage and communication. CountImbalance
// quantifies the skew without running messages.
func PlanExchangeUnbalanced(rank, size int, localIDs []int, q float64, totalN int, seed uint64, epoch int) (ExchangePlan, error) {
	if rank < 0 || rank >= size {
		return ExchangePlan{}, fmt.Errorf("shuffle: PlanExchangeUnbalanced: rank %d out of [0,%d)", rank, size)
	}
	k := Slots(q, totalN, size)
	if k > len(localIDs) {
		return ExchangePlan{}, fmt.Errorf("shuffle: PlanExchangeUnbalanced: %d slots but only %d local samples", k, len(localIDs))
	}
	plan := ExchangePlan{Epoch: epoch, SendIDs: make([]int, k), Dests: make([]int, k)}
	if k == 0 {
		return plan, nil
	}
	r := rng.NewStream(seed, saltSend, uint64(epoch), uint64(rank))
	p := r.Perm(len(localIDs))
	for i := 0; i < k; i++ {
		plan.SendIDs[i] = localIDs[p[i]]
		plan.Dests[i] = r.Intn(size)
	}
	return plan, nil
}

// CountImbalance returns, for a set of per-rank plans, each rank's receive
// count. For balanced plans every entry equals the slot count; for the
// unbalanced ablation the spread demonstrates why Algorithm 1 uses shared
// permutations.
func CountImbalance(plans []ExchangePlan, size int) []int {
	counts := make([]int, size)
	for _, p := range plans {
		for _, d := range p.Dests {
			counts[d]++
		}
	}
	return counts
}
