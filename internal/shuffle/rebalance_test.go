package shuffle

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"plshuffle/internal/data"
	"plshuffle/internal/mpi"
	"plshuffle/internal/store"
)

func rebalanceSample(id int) data.Sample {
	return data.Sample{ID: id, Label: id % 7, Features: []float32{float32(id), float32(id) * 0.5}, Bytes: 64}
}

// TestRebalanceFromSkew: rank 0 starts holding the entire dataset (the
// extreme skew a fresh joiner world exhibits: joiners hold nothing) and a
// rebalance leaves every rank with a balanced, disjoint, conserved share.
func TestRebalanceFromSkew(t *testing.T) {
	const n, m = 41, 4
	finals := make([][]int, m)
	err := mpi.Run(m, func(c *mpi.Comm) error {
		st := store.NewLocal(0)
		if c.Rank() == 0 {
			for id := 0; id < n; id++ {
				if err := st.Put(rebalanceSample(id)); err != nil {
					return err
				}
			}
		}
		stats, err := Rebalance(c, st, 42, 3)
		if err != nil {
			return err
		}
		if stats.Total != n {
			return fmt.Errorf("rank %d: stats.Total = %d, want %d", c.Rank(), stats.Total, n)
		}
		if c.Rank() == 0 && stats.Received != 0 {
			return fmt.Errorf("rank 0 received %d samples while holding everything", stats.Received)
		}
		if c.Rank() != 0 && stats.Sent != 0 {
			return fmt.Errorf("rank %d sent %d samples from an empty store", c.Rank(), stats.Sent)
		}
		finals[c.Rank()] = st.IDs()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	assertConservedBalanced(t, finals, n)
}

// TestRebalanceDeterministicAndIdempotent: the target partition is a pure
// function of (survivor set, seed, epoch), so a second rebalance at the same
// coordinates moves nothing.
func TestRebalanceIdempotent(t *testing.T) {
	const n, m = 24, 3
	err := mpi.Run(m, func(c *mpi.Comm) error {
		st := store.NewLocal(0)
		// Arbitrary initial spread: round-robin.
		for id := 0; id < n; id++ {
			if id%m == c.Rank() {
				if err := st.Put(rebalanceSample(id)); err != nil {
					return err
				}
			}
		}
		if _, err := Rebalance(c, st, 7, 1); err != nil {
			return err
		}
		after := st.IDs()
		stats, err := Rebalance(c, st, 7, 1)
		if err != nil {
			return err
		}
		if stats.Sent != 0 || stats.Received != 0 {
			return fmt.Errorf("rank %d: second rebalance moved sent=%d recv=%d", c.Rank(), stats.Sent, stats.Received)
		}
		if !equalIntsRB(after, st.IDs()) {
			return fmt.Errorf("rank %d: idempotent rebalance changed the store", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRebalanceDegradedGroup: a shrunken group (dead rank excluded, its
// samples lost) rebalances what survives over the members, joiner included.
func TestRebalanceDegradedGroup(t *testing.T) {
	const n = 40 // ids 0..39; rank 1's initial quarter (10..19) is "lost"
	w := mpi.NewWorld(5)
	group := []int{0, 2, 3, 4} // rank 1 dead, rank 4 is a joiner with nothing
	finals := make([][]int, 5)
	errs := make([]error, 5)
	var wg sync.WaitGroup
	for _, r := range group {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := w.Comm(r)
			if r != 4 {
				if err := c.Shrink([]int{0, 2, 3}); err != nil {
					errs[r] = err
					return
				}
			}
			if err := c.Grow(5, group); err != nil {
				errs[r] = err
				return
			}
			st := store.NewLocal(0)
			// Survivors hold their original quarters; rank 1's is gone.
			if r != 4 {
				quarter := map[int]int{0: 0, 2: 20, 3: 30}[r]
				for id := quarter; id < quarter+10; id++ {
					if err := st.Put(rebalanceSample(id)); err != nil {
						errs[r] = err
						return
					}
				}
			}
			if _, err := Rebalance(c, st, 99, 5); err != nil {
				errs[r] = err
				return
			}
			finals[r] = st.IDs()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	var held [][]int
	for _, r := range group {
		held = append(held, finals[r])
	}
	// 30 surviving samples over 4 members: shares of 8,8,7,7.
	assertConservedBalanced(t, held, 30)
	union := map[int]bool{}
	for _, ids := range held {
		for _, id := range ids {
			union[id] = true
		}
	}
	for id := 10; id < 20; id++ {
		if union[id] {
			t.Fatalf("lost sample %d reappeared after rebalance", id)
		}
	}
	_ = n
}

// assertConservedBalanced checks that the per-rank ID sets are disjoint,
// cover exactly total samples, and differ in size by at most one.
func assertConservedBalanced(t *testing.T, held [][]int, total int) {
	t.Helper()
	seen := map[int]int{}
	minLen, maxLen := -1, -1
	var all []int
	for r, ids := range held {
		if minLen == -1 || len(ids) < minLen {
			minLen = len(ids)
		}
		if len(ids) > maxLen {
			maxLen = len(ids)
		}
		for _, id := range ids {
			if prev, dup := seen[id]; dup {
				t.Fatalf("sample %d held by entries %d and %d", id, prev, r)
			}
			seen[id] = r
			all = append(all, id)
		}
	}
	if len(all) != total {
		t.Fatalf("%d samples held, want %d", len(all), total)
	}
	if maxLen-minLen > 1 {
		t.Fatalf("imbalanced shares: min %d, max %d", minLen, maxLen)
	}
	sort.Ints(all)
}

func equalIntsRB(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
