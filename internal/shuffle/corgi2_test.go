package shuffle

import (
	"reflect"
	"testing"
)

func TestCorgi2AssignBalancedAndComplete(t *testing.T) {
	const shards, workers = 22, 4
	assign, err := Corgi2Assign(shards, workers, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for r, s := range assign {
		if len(s) != shards/workers && len(s) != shards/workers+1 {
			t.Fatalf("rank %d holds %d shards, want %d or %d", r, len(s), shards/workers, shards/workers+1)
		}
		for _, id := range s {
			if seen[id] {
				t.Fatalf("shard %d assigned twice", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != shards {
		t.Fatalf("%d shards assigned, want %d", len(seen), shards)
	}

	// Deterministic per group, different across groups.
	again, _ := Corgi2Assign(shards, workers, 7, 0)
	if !reflect.DeepEqual(assign, again) {
		t.Fatal("same (seed, group) produced different assignments")
	}
	other, _ := Corgi2Assign(shards, workers, 7, 1)
	if reflect.DeepEqual(assign, other) {
		t.Fatal("group 1 reproduced group 0's assignment (offline reshuffle missing)")
	}

	if _, err := Corgi2Assign(3, 4, 7, 0); err == nil {
		t.Fatal("more workers than shards accepted")
	}
}

func TestCorgi2EpochPlanCoversAssignment(t *testing.T) {
	assigned := []int{3, 8, 1, 5, 9}
	counts := func(sh int) int { return 10 + sh } // uneven shard sizes
	plan := Corgi2EpochPlan(assigned, counts, 2, 7, 2, 1)

	// Windows partition the assignment into chunks of at most 2 shards.
	var flat []int
	for _, w := range plan.Windows {
		if len(w) == 0 || len(w) > 2 {
			t.Fatalf("window size %d out of [1,2]", len(w))
		}
		flat = append(flat, w...)
	}
	if len(flat) != len(assigned) {
		t.Fatalf("windows cover %d shards, want %d", len(flat), len(assigned))
	}

	// Bounds bracket the order; every sample of every assigned shard
	// appears exactly once, inside its window's bounds.
	if plan.Bounds[0] != 0 || plan.Bounds[len(plan.Bounds)-1] != len(plan.Order) {
		t.Fatalf("bounds %v do not bracket order of %d", plan.Bounds, len(plan.Order))
	}
	want := 0
	for _, sh := range assigned {
		want += counts(sh)
	}
	if len(plan.Order) != want {
		t.Fatalf("order has %d refs, want %d", len(plan.Order), want)
	}
	seen := make(map[[2]int]bool)
	for w, win := range plan.Windows {
		inWin := make(map[int]bool)
		for _, sh := range win {
			inWin[sh] = true
		}
		for _, ref := range plan.Order[plan.Bounds[w]:plan.Bounds[w+1]] {
			if !inWin[ref.Shard] {
				t.Fatalf("window %d contains ref to shard %d not in %v", w, ref.Shard, win)
			}
			k := [2]int{ref.Shard, ref.Index}
			if seen[k] {
				t.Fatalf("ref %v appears twice", k)
			}
			seen[k] = true
		}
	}

	// Pure function of its arguments; epoch and rank both matter.
	same := Corgi2EpochPlan(assigned, counts, 2, 7, 2, 1)
	if !reflect.DeepEqual(plan, same) {
		t.Fatal("same arguments produced different plans")
	}
	if reflect.DeepEqual(plan.Order, Corgi2EpochPlan(assigned, counts, 2, 7, 3, 1).Order) {
		t.Fatal("different epochs share an order")
	}
	if reflect.DeepEqual(plan.Order, Corgi2EpochPlan(assigned, counts, 2, 7, 2, 0).Order) {
		t.Fatal("different ranks share an order")
	}

	// window <= 0 means one window over everything.
	all := Corgi2EpochPlan(assigned, counts, 0, 7, 2, 1)
	if len(all.Windows) != 1 || len(all.Windows[0]) != len(assigned) {
		t.Fatalf("window=0 built %d windows", len(all.Windows))
	}
}

func TestCorgi2StrategySurface(t *testing.T) {
	s := Corgi2Shuffling(3)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.String(); got != "corgi2-g3" {
		t.Fatalf("String() = %q", got)
	}
	if s.ExchangeFraction() != 0 {
		t.Fatal("corgi2 exchanges no samples")
	}
	if s.StorageFactor(16) != 1 {
		t.Fatal("corgi2 stores N/M locally at most")
	}
	for _, e := range []int{0, 1, 2, 3, 4, 5} {
		if got, want := s.EpochGroup(e), e/3; got != want {
			t.Fatalf("EpochGroup(%d) = %d, want %d", e, got, want)
		}
	}
	if err := Corgi2Shuffling(0).Validate(); err == nil {
		t.Fatal("GroupEpochs=0 accepted")
	}
}
