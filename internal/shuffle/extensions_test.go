package shuffle

import (
	"fmt"
	"testing"

	"plshuffle/internal/mpi"
)

func TestHierarchicalPlanIsBalancedPermutation(t *testing.T) {
	const n, m, groupSize = 256, 16, 4
	parts, _ := Partition(n, m, 5)
	plans := make([]ExchangePlan, m)
	for r := 0; r < m; r++ {
		p, err := PlanExchangeHierarchical(r, m, groupSize, parts[r], 0.5, n, 5, 2)
		if err != nil {
			t.Fatal(err)
		}
		plans[r] = p
	}
	k := Slots(0.5, n, m)
	// Per slot, destinations across ranks form a permutation (balance).
	for i := 0; i < k; i++ {
		seen := make([]bool, m)
		for r := 0; r < m; r++ {
			d := plans[r].Dests[i]
			if d < 0 || d >= m || seen[d] {
				t.Fatalf("slot %d: rank %d destination %d breaks the permutation", i, r, d)
			}
			seen[d] = true
		}
	}
	// Group alignment: each group sends into exactly one destination group
	// per slot, and destination groups permute.
	if err := GroupAlignment(plans, groupSize); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchicalErrors(t *testing.T) {
	ids := []int{1, 2, 3, 4}
	if _, err := PlanExchangeHierarchical(0, 8, 3, ids, 0.5, 64, 1, 0); err == nil {
		t.Error("group size not dividing world accepted")
	}
	if _, err := PlanExchangeHierarchical(9, 8, 4, ids, 0.5, 64, 1, 0); err == nil {
		t.Error("bad rank accepted")
	}
	if _, err := PlanExchangeHierarchical(0, 8, 4, ids, 1.5, 64, 1, 0); err == nil {
		t.Error("bad fraction accepted")
	}
	if _, err := PlanExchangeHierarchical(0, 8, 4, ids, 1, 64, 1, 0); err == nil {
		t.Error("insufficient local samples accepted")
	}
}

func TestFlatPlansFailGroupAlignment(t *testing.T) {
	// The flat exchange should (with overwhelming probability) violate the
	// alignment property the hierarchical plan guarantees.
	const n, m, groupSize = 256, 16, 4
	parts, _ := Partition(n, m, 5)
	plans := make([]ExchangePlan, m)
	for r := 0; r < m; r++ {
		p, err := PlanExchange(r, m, parts[r], 0.5, n, 5, 2)
		if err != nil {
			t.Fatal(err)
		}
		plans[r] = p
	}
	if err := GroupAlignment(plans, groupSize); err == nil {
		t.Fatal("flat plans unexpectedly satisfy group alignment")
	}
}

func TestSchedulerHierarchicalConservation(t *testing.T) {
	const n, m, groupSize = 128, 8, 4
	stores, _ := mkStores(t, n, m, 31, 0)
	perWorker := make([]int, m)
	for r := range stores {
		perWorker[r] = stores[r].Len()
	}
	err := mpi.Run(m, func(c *mpi.Comm) error {
		sched, err := NewScheduler(c, stores[c.Rank()], 0.4, n, 31)
		if err != nil {
			return err
		}
		if err := sched.UseHierarchical(groupSize); err != nil {
			return err
		}
		for e := 0; e < 3; e++ {
			if err := sched.RunEpochExchange(e); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, stores, n, perWorker)
}

func TestUseHierarchicalValidation(t *testing.T) {
	stores, _ := mkStores(t, 16, 4, 1, 0)
	err := mpi.Run(4, func(c *mpi.Comm) error {
		sched, err := NewScheduler(c, stores[c.Rank()], 0.5, 16, 1)
		if err != nil {
			return err
		}
		if err := sched.UseHierarchical(3); err == nil {
			return fmt.Errorf("group size 3 accepted for world 4")
		}
		if err := sched.UseHierarchical(0); err == nil {
			return fmt.Errorf("group size 0 accepted")
		}
		if err := sched.UseHierarchical(2); err != nil {
			return err
		}
		if err := sched.Scheduling(0); err != nil {
			return err
		}
		if err := sched.UseHierarchical(4); err == nil {
			return fmt.Errorf("mode switch mid-epoch accepted")
		}
		if err := sched.Synchronize(); err != nil {
			return err
		}
		return sched.CleanLocalStorage()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWeightedOrderIsPermutation(t *testing.T) {
	ids := []int{3, 1, 4, 1 + 4, 9, 2, 6}
	w := map[int]float64{3: 10, 9: 0.1}
	out := WeightedOrder(ids, w, 7, 0, 0)
	if len(out) != len(ids) {
		t.Fatalf("length %d", len(out))
	}
	seen := map[int]bool{}
	for _, id := range out {
		if seen[id] {
			t.Fatalf("duplicate %d", id)
		}
		seen[id] = true
	}
	for _, id := range ids {
		if !seen[id] {
			t.Fatalf("missing %d", id)
		}
	}
}

func TestWeightedOrderDeterministic(t *testing.T) {
	ids := []int{0, 1, 2, 3, 4, 5}
	w := map[int]float64{0: 5, 5: 2}
	a := WeightedOrder(ids, w, 9, 3, 1)
	b := WeightedOrder(ids, w, 9, 3, 1)
	c := WeightedOrder(ids, w, 9, 4, 1)
	same, diff := true, false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Fatal("same stream differs")
	}
	if !diff {
		t.Fatal("different epochs identical")
	}
}

func TestWeightedOrderPrefersHighWeights(t *testing.T) {
	// Statistically: an id with 100x weight should land in the first half
	// far more often than chance.
	const trials = 200
	ids := make([]int, 20)
	for i := range ids {
		ids[i] = i
	}
	w := map[int]float64{7: 100}
	for i := range ids {
		if i != 7 {
			w[i] = 1
		}
	}
	firstHalf := 0
	for trial := 0; trial < trials; trial++ {
		out := WeightedOrder(ids, w, uint64(trial), 0, 0)
		for pos, id := range out {
			if id == 7 {
				if pos < 10 {
					firstHalf++
				}
				break
			}
		}
	}
	if firstHalf < 170 { // chance would be ~100
		t.Fatalf("high-weight id in first half only %d/%d times", firstHalf, trials)
	}
}

func TestSendPrioritySelectsTopWeights(t *testing.T) {
	const n, m = 64, 4
	stores, _ := mkStores(t, n, m, 41, 0)
	err := mpi.Run(m, func(c *mpi.Comm) error {
		st := stores[c.Rank()]
		sched, err := NewScheduler(c, st, 0.25, n, 41)
		if err != nil {
			return err
		}
		// Give four local samples overwhelming weight; with Q=0.25 exactly
		// 4 slots exist, so those four must be the ones sent.
		ids := st.IDs()
		weights := map[int]float64{}
		want := map[int]bool{}
		for i, id := range ids {
			if i < 4 {
				weights[id] = 1e12
				want[id] = true
			} else {
				weights[id] = 1e-12
			}
		}
		sched.SetSendPriority(weights)
		if err := sched.Scheduling(0); err != nil {
			return err
		}
		for _, id := range sched.plan.SendIDs {
			if !want[id] {
				return fmt.Errorf("rank %d sent low-priority sample %d", c.Rank(), id)
			}
		}
		if err := sched.Synchronize(); err != nil {
			return err
		}
		return sched.CleanLocalStorage()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWeightedOrderEmptyWeights(t *testing.T) {
	ids := []int{5, 6, 7}
	out := WeightedOrder(ids, map[int]float64{}, 1, 0, 0)
	if len(out) != 3 {
		t.Fatal("empty weights broke ordering")
	}
}

func BenchmarkHierarchicalPlan(b *testing.B) {
	parts, _ := Partition(16384, 64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PlanExchangeHierarchical(5, 64, 4, parts[5], 0.3, 16384, 1, i); err != nil {
			b.Fatal(err)
		}
	}
}
