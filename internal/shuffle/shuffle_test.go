package shuffle

import (
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"

	"plshuffle/internal/data"
	"plshuffle/internal/mpi"
	"plshuffle/internal/store"
)

func TestStrategyBasics(t *testing.T) {
	if GlobalShuffling().String() != "global" || LocalShuffling().String() != "local" {
		t.Fatal("strategy names wrong")
	}
	if Partial(0.1).String() != "partial-0.1" {
		t.Fatalf("partial name: %s", Partial(0.1).String())
	}
	if GlobalShuffling().ExchangeFraction() != 1 || LocalShuffling().ExchangeFraction() != 0 || Partial(0.3).ExchangeFraction() != 0.3 {
		t.Fatal("ExchangeFraction wrong")
	}
	if err := Partial(1.5).Validate(); err == nil {
		t.Fatal("Q=1.5 validated")
	}
	if err := Partial(-0.1).Validate(); err == nil {
		t.Fatal("Q=-0.1 validated")
	}
	for _, s := range []Strategy{GlobalShuffling(), LocalShuffling(), Partial(0.5)} {
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	if f := Partial(0.3).StorageFactor(128); f != 1.3 {
		t.Fatalf("PLS storage factor %v", f)
	}
	if f := GlobalShuffling().StorageFactor(128); f != 128 {
		t.Fatalf("GS storage factor %v", f)
	}
	if f := LocalShuffling().StorageFactor(128); f != 1 {
		t.Fatalf("LS storage factor %v", f)
	}
}

func TestPartitionCoversExactly(t *testing.T) {
	for _, tc := range []struct{ n, m int }{{10, 2}, {100, 7}, {64, 64}, {1000, 1}, {17, 5}} {
		parts, err := Partition(tc.n, tc.m, 42)
		if err != nil {
			t.Fatalf("Partition(%d,%d): %v", tc.n, tc.m, err)
		}
		if len(parts) != tc.m {
			t.Fatalf("got %d parts", len(parts))
		}
		seen := make([]bool, tc.n)
		for r, part := range parts {
			want := tc.n / tc.m
			if r < tc.n%tc.m {
				want++
			}
			if len(part) != want {
				t.Fatalf("n=%d m=%d rank %d has %d samples, want %d", tc.n, tc.m, r, len(part), want)
			}
			for _, id := range part {
				if id < 0 || id >= tc.n || seen[id] {
					t.Fatalf("invalid or duplicate id %d", id)
				}
				seen[id] = true
			}
		}
	}
}

func TestPartitionDeterministicAndSeedSensitive(t *testing.T) {
	a, _ := Partition(100, 4, 1)
	b, _ := Partition(100, 4, 1)
	c, _ := Partition(100, 4, 2)
	same, diff := true, false
	for r := range a {
		for i := range a[r] {
			if a[r][i] != b[r][i] {
				same = false
			}
			if a[r][i] != c[r][i] {
				diff = true
			}
		}
	}
	if !same {
		t.Fatal("same seed gave different partitions")
	}
	if !diff {
		t.Fatal("different seeds gave identical partitions")
	}
}

func TestPartitionErrors(t *testing.T) {
	if _, err := Partition(0, 1, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := Partition(10, 0, 1); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, err := Partition(3, 5, 1); err == nil {
		t.Fatal("m>n accepted")
	}
}

func TestSlots(t *testing.T) {
	cases := []struct {
		q       float64
		n, m, k int
	}{
		{0, 1000, 10, 0},
		{1, 1000, 10, 100},
		{0.1, 1000, 10, 10},
		{0.3, 1000, 10, 30},
		{0.25, 100, 10, 2}, // floor(2.5) = 2
		{0.5, 7, 2, 1},     // floor(7/2)=3, floor(1.5)=1
		{1, 7, 2, 3},       // capped at floor(n/m)
	}
	for _, c := range cases {
		if got := Slots(c.q, c.n, c.m); got != c.k {
			t.Errorf("Slots(%v,%d,%d) = %d, want %d", c.q, c.n, c.m, got, c.k)
		}
	}
}

func TestPlanExchangeBalancedPerSlot(t *testing.T) {
	// The heart of Algorithm 1: for every slot, the destinations chosen
	// across ranks form a permutation of the ranks, so each rank receives
	// exactly one sample per slot.
	const n, m = 120, 8
	parts, _ := Partition(n, m, 5)
	plans := make([]ExchangePlan, m)
	for r := 0; r < m; r++ {
		p, err := PlanExchange(r, m, parts[r], 0.4, n, 5, 3)
		if err != nil {
			t.Fatal(err)
		}
		plans[r] = p
	}
	k := Slots(0.4, n, m)
	for i := 0; i < k; i++ {
		seen := make([]bool, m)
		for r := 0; r < m; r++ {
			d := plans[r].Dests[i]
			if d < 0 || d >= m || seen[d] {
				t.Fatalf("slot %d: destination %d from rank %d breaks the permutation", i, d, r)
			}
			seen[d] = true
		}
	}
	counts := CountImbalance(plans, m)
	for r, c := range counts {
		if c != k {
			t.Fatalf("rank %d receives %d samples, want %d", r, c, k)
		}
	}
}

func TestPlanExchangeSendIDsAreLocalAndDistinct(t *testing.T) {
	const n, m = 60, 4
	parts, _ := Partition(n, m, 9)
	for r := 0; r < m; r++ {
		p, err := PlanExchange(r, m, parts[r], 0.5, n, 9, 0)
		if err != nil {
			t.Fatal(err)
		}
		local := map[int]bool{}
		for _, id := range parts[r] {
			local[id] = true
		}
		seen := map[int]bool{}
		for _, id := range p.SendIDs {
			if !local[id] {
				t.Fatalf("rank %d plans to send non-local sample %d", r, id)
			}
			if seen[id] {
				t.Fatalf("rank %d plans to send sample %d twice", r, id)
			}
			seen[id] = true
		}
	}
}

func TestPlanExchangeErrors(t *testing.T) {
	if _, err := PlanExchange(5, 4, []int{1}, 0.5, 100, 1, 0); err == nil {
		t.Fatal("bad rank accepted")
	}
	if _, err := PlanExchange(0, 4, []int{1}, 1.5, 100, 1, 0); err == nil {
		t.Fatal("bad fraction accepted")
	}
	// 100 samples over 4 workers: 25 slots at q=1, but only 3 local samples.
	if _, err := PlanExchange(0, 4, []int{1, 2, 3}, 1, 100, 1, 0); err == nil {
		t.Fatal("insufficient local samples accepted")
	}
}

func TestPlanExchangeQZeroEmpty(t *testing.T) {
	p, err := PlanExchange(0, 4, []int{1, 2, 3}, 0, 100, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Slots() != 0 {
		t.Fatalf("q=0 plan has %d slots", p.Slots())
	}
}

// mkStores partitions a synthetic dataset and fills one store per worker.
func mkStores(t testing.TB, n, m int, seed uint64, capacity int64) ([]*store.Local, *data.Dataset) {
	t.Helper()
	d, err := data.Generate(data.SyntheticSpec{
		Name: "t", NumSamples: n, NumVal: 0, Classes: 2, FeatureDim: 4,
		ClassSep: 2, NoiseStd: 1, Bytes: 10, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := Partition(n, m, seed)
	if err != nil {
		t.Fatal(err)
	}
	stores := make([]*store.Local, m)
	for r := 0; r < m; r++ {
		stores[r] = store.NewLocal(capacity)
		for _, id := range parts[r] {
			if err := stores[r].Put(d.Train[id]); err != nil {
				t.Fatal(err)
			}
		}
	}
	return stores, d
}

// checkConservation verifies that the union of all stores is exactly the
// full dataset with no duplicates, and per-store counts are unchanged.
func checkConservation(t *testing.T, stores []*store.Local, n int, perWorker []int) {
	t.Helper()
	seen := make([]bool, n)
	for r, st := range stores {
		if st.Len() != perWorker[r] {
			t.Fatalf("rank %d holds %d samples, want %d", r, st.Len(), perWorker[r])
		}
		for _, id := range st.IDs() {
			if seen[id] {
				t.Fatalf("sample %d present on two workers", id)
			}
			seen[id] = true
		}
	}
	for id, ok := range seen {
		if !ok {
			t.Fatalf("sample %d lost", id)
		}
	}
}

func runEpochs(t *testing.T, stores []*store.Local, n int, q float64, seed uint64, epochs int, chunk int) {
	t.Helper()
	m := len(stores)
	err := mpi.Run(m, func(c *mpi.Comm) error {
		sched, err := NewScheduler(c, stores[c.Rank()], q, n, seed)
		if err != nil {
			return err
		}
		for e := 0; e < epochs; e++ {
			if err := sched.Scheduling(e); err != nil {
				return err
			}
			if chunk > 0 {
				for posted := 0; posted < sched.Slots(); posted += chunk {
					if _, err := sched.Communicate(chunk); err != nil {
						return err
					}
				}
			}
			if err := sched.Synchronize(); err != nil {
				return err
			}
			if err := sched.CleanLocalStorage(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchangeConservation(t *testing.T) {
	for _, tc := range []struct {
		n, m   int
		q      float64
		epochs int
	}{
		{64, 4, 0.25, 3},
		{120, 8, 0.5, 2},
		{100, 10, 1.0, 2},
		{60, 3, 0.0, 2},
		{63, 4, 0.3, 3}, // non-divisible N
	} {
		t.Run(fmt.Sprintf("n=%d,m=%d,q=%v", tc.n, tc.m, tc.q), func(t *testing.T) {
			stores, _ := mkStores(t, tc.n, tc.m, 11, 0)
			perWorker := make([]int, tc.m)
			for r := range stores {
				perWorker[r] = stores[r].Len()
			}
			runEpochs(t, stores, tc.n, tc.q, 11, tc.epochs, 0)
			checkConservation(t, stores, tc.n, perWorker)
		})
	}
}

func TestExchangeQZeroMovesNothing(t *testing.T) {
	stores, _ := mkStores(t, 40, 4, 3, 0)
	before := make([][]int, 4)
	for r := range stores {
		before[r] = stores[r].IDs()
	}
	runEpochs(t, stores, 40, 0, 3, 2, 0)
	for r := range stores {
		after := stores[r].IDs()
		for i := range after {
			if after[i] != before[r][i] {
				t.Fatalf("q=0 moved samples on rank %d", r)
			}
		}
	}
}

func TestExchangeActuallyMoves(t *testing.T) {
	stores, _ := mkStores(t, 100, 4, 7, 0)
	before := make([]map[int]bool, 4)
	for r := range stores {
		before[r] = map[int]bool{}
		for _, id := range stores[r].IDs() {
			before[r][id] = true
		}
	}
	runEpochs(t, stores, 100, 0.5, 7, 1, 0)
	moved := 0
	for r := range stores {
		for _, id := range stores[r].IDs() {
			if !before[r][id] {
				moved++
			}
		}
	}
	// 4 workers x 12 slots: some sends are self-sends, but with high
	// probability most samples moved.
	if moved < 10 {
		t.Fatalf("only %d samples changed workers", moved)
	}
}

func TestExchangeDeterministicAcrossRuns(t *testing.T) {
	final := func() [][]int {
		stores, _ := mkStores(t, 80, 4, 21, 0)
		runEpochs(t, stores, 80, 0.4, 21, 3, 0)
		out := make([][]int, 4)
		for r := range stores {
			out[r] = stores[r].IDs()
		}
		return out
	}
	a, b := final(), final()
	for r := range a {
		if len(a[r]) != len(b[r]) {
			t.Fatal("nondeterministic store sizes")
		}
		for i := range a[r] {
			if a[r][i] != b[r][i] {
				t.Fatal("exchange outcome is nondeterministic")
			}
		}
	}
}

func TestChunkedCommunicateMatchesBulk(t *testing.T) {
	bulk, _ := mkStores(t, 96, 4, 13, 0)
	chunked, _ := mkStores(t, 96, 4, 13, 0)
	runEpochs(t, bulk, 96, 0.5, 13, 2, 0)
	runEpochs(t, chunked, 96, 0.5, 13, 2, 3) // 3 slots per Communicate call
	for r := range bulk {
		a, b := bulk[r].IDs(), chunked[r].IDs()
		if len(a) != len(b) {
			t.Fatal("bulk and chunked sizes differ")
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("bulk and chunked exchanges diverged")
			}
		}
	}
}

func TestSchedulerPeakStorageBound(t *testing.T) {
	// Section III-A: PLS requires at most (1+Q)·N/M local storage.
	const n, m = 100, 4
	const q = 0.5
	stores, _ := mkStores(t, n, m, 17, 0)
	runEpochs(t, stores, n, q, 17, 3, 0)
	perWorkerBytes := int64(n / m * 10) // 10 bytes per sample
	bound := int64(float64(perWorkerBytes) * (1 + q))
	for r, st := range stores {
		if st.Peak() > bound {
			t.Fatalf("rank %d peak storage %d exceeds (1+Q)N/M bound %d", r, st.Peak(), bound)
		}
		if st.Peak() <= perWorkerBytes {
			t.Fatalf("rank %d peak %d never exceeded N/M=%d; exchange not overlapping storage", r, st.Peak(), perWorkerBytes)
		}
	}
}

func TestSchedulerCapacityEnforced(t *testing.T) {
	// A store sized exactly N/M cannot absorb the exchange: Put must fail
	// and the scheduler must surface the error.
	const n, m = 40, 4
	stores, _ := mkStores(t, n, m, 19, int64(n/m*10)) // capacity = N/M bytes exactly
	err := mpi.Run(m, func(c *mpi.Comm) error {
		sched, err := NewScheduler(c, stores[c.Rank()], 0.5, n, 19)
		if err != nil {
			return err
		}
		return sched.RunEpochExchange(0)
	})
	if err == nil {
		t.Fatal("capacity-starved exchange succeeded")
	}
}

func TestSchedulerLifecycleErrors(t *testing.T) {
	stores, _ := mkStores(t, 8, 1, 1, 0)
	err := mpi.Run(1, func(c *mpi.Comm) error {
		sched, err := NewScheduler(c, stores[0], 0.5, 8, 1)
		if err != nil {
			return err
		}
		if _, err := sched.Communicate(-1); err == nil {
			return fmt.Errorf("Communicate before Scheduling succeeded")
		}
		if err := sched.Synchronize(); err == nil {
			return fmt.Errorf("Synchronize before Scheduling succeeded")
		}
		if err := sched.CleanLocalStorage(); err == nil {
			return fmt.Errorf("CleanLocalStorage before Synchronize succeeded")
		}
		if err := sched.Scheduling(0); err != nil {
			return err
		}
		if err := sched.Scheduling(1); err == nil {
			return fmt.Errorf("double Scheduling succeeded")
		}
		if err := sched.Synchronize(); err != nil {
			return err
		}
		return sched.CleanLocalStorage()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewSchedulerValidation(t *testing.T) {
	st := store.NewLocal(0)
	w := mpi.NewWorld(1)
	if _, err := NewScheduler(nil, st, 0.5, 10, 1); err == nil {
		t.Fatal("nil comm accepted")
	}
	if _, err := NewScheduler(w.Comm(0), nil, 0.5, 10, 1); err == nil {
		t.Fatal("nil store accepted")
	}
	if _, err := NewScheduler(w.Comm(0), st, 2, 10, 1); err == nil {
		t.Fatal("bad q accepted")
	}
	if _, err := NewScheduler(w.Comm(0), st, 0.5, 0, 1); err == nil {
		t.Fatal("bad totalN accepted")
	}
}

func TestExecuteBulkMatchesPlan(t *testing.T) {
	const n, m = 48, 4
	stores, _ := mkStores(t, n, m, 23, 0)
	results := make([]ExchangeResult, m)
	err := mpi.Run(m, func(c *mpi.Comm) error {
		plan, err := PlanExchange(c.Rank(), m, stores[c.Rank()].IDs(), 0.5, n, 23, 0)
		if err != nil {
			return err
		}
		res, err := plan.Execute(c, stores[c.Rank()].Get)
		if err != nil {
			return err
		}
		results[c.Rank()] = res
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	k := Slots(0.5, n, m)
	sentAll := map[int]int{}
	recvAll := map[int]int{}
	for r := 0; r < m; r++ {
		if len(results[r].SentIDs) != k || len(results[r].Received) != k {
			t.Fatalf("rank %d sent %d received %d, want %d", r, len(results[r].SentIDs), len(results[r].Received), k)
		}
		for _, id := range results[r].SentIDs {
			sentAll[id]++
		}
		for _, s := range results[r].Received {
			recvAll[s.ID]++
		}
	}
	if len(sentAll) != len(recvAll) {
		t.Fatalf("sent %d distinct, received %d distinct", len(sentAll), len(recvAll))
	}
	for id, c := range sentAll {
		if c != 1 || recvAll[id] != 1 {
			t.Fatalf("sample %d sent %d times, received %d times", id, c, recvAll[id])
		}
	}
}

func TestUnbalancedAblationIsUnbalanced(t *testing.T) {
	const n, m = 1024, 16
	parts, _ := Partition(n, m, 31)
	balanced := make([]ExchangePlan, m)
	unbalanced := make([]ExchangePlan, m)
	for r := 0; r < m; r++ {
		var err error
		balanced[r], err = PlanExchange(r, m, parts[r], 0.5, n, 31, 0)
		if err != nil {
			t.Fatal(err)
		}
		unbalanced[r], err = PlanExchangeUnbalanced(r, m, parts[r], 0.5, n, 31, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	k := Slots(0.5, n, m)
	bc := CountImbalance(balanced, m)
	uc := CountImbalance(unbalanced, m)
	for _, c := range bc {
		if c != k {
			t.Fatalf("balanced plan receive count %d != %d", c, k)
		}
	}
	spread := 0
	for _, c := range uc {
		if c != k {
			spread++
		}
	}
	if spread == 0 {
		t.Fatal("uniform-random destinations happened to be perfectly balanced; expected skew")
	}
}

func TestEpochOrderIsPermutation(t *testing.T) {
	check := func(seed uint64, epoch uint8, rank uint8, nRaw uint8) bool {
		n := int(nRaw)%32 + 1
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i * 3
		}
		out := EpochOrder(ids, seed, int(epoch), int(rank))
		if len(out) != n {
			return false
		}
		seen := map[int]bool{}
		for _, v := range out {
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		for _, id := range ids {
			if !seen[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEpochOrderVariesByEpochAndRank(t *testing.T) {
	ids := make([]int, 64)
	for i := range ids {
		ids[i] = i
	}
	a := EpochOrder(ids, 1, 0, 0)
	b := EpochOrder(ids, 1, 1, 0)
	c := EpochOrder(ids, 1, 0, 1)
	same := func(x, y []int) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if same(a, b) {
		t.Fatal("epoch change did not change order")
	}
	if same(a, c) {
		t.Fatal("rank change did not change order")
	}
}

func TestGlobalEpochPartition(t *testing.T) {
	a, err := GlobalEpochPartition(100, 8, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, 100)
	for _, part := range a {
		for _, id := range part {
			if seen[id] {
				t.Fatalf("duplicate id %d", id)
			}
			seen[id] = true
		}
	}
	for id, ok := range seen {
		if !ok {
			t.Fatalf("missing id %d", id)
		}
	}
	b, _ := GlobalEpochPartition(100, 8, 5, 1)
	diff := false
	for r := range a {
		for i := range a[r] {
			if i < len(b[r]) && a[r][i] != b[r][i] {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("global partition identical across epochs")
	}
	if _, err := GlobalEpochPartition(0, 1, 1, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func BenchmarkPlanExchange(b *testing.B) {
	parts, _ := Partition(16384, 16, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PlanExchange(3, 16, parts[3], 0.3, 16384, 1, i); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullExchange8Workers(b *testing.B) {
	const n, m = 2048, 8
	var wireBytes atomic.Int64 // sent bytes across all ranks and iterations
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		stores, _ := mkStores(b, n, m, 1, 0)
		b.StartTimer()
		err := mpi.Run(m, func(c *mpi.Comm) error {
			sched, err := NewScheduler(c, stores[c.Rank()], 0.3, n, 1)
			if err != nil {
				return err
			}
			if err := sched.RunEpochExchange(0); err != nil {
				return err
			}
			sent, _ := sched.CumulativeWireTraffic()
			wireBytes.Add(sent)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(wireBytes.Load())/float64(b.N), "wire-bytes/op")
}
