package shuffle

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"plshuffle/internal/data"
	"plshuffle/internal/mpi"
	"plshuffle/internal/store"
	"plshuffle/internal/transport"
)

// dedupRunStats aggregates one rank's counters across a whole run.
type dedupRunStats struct {
	sent, recv  int64
	hits        int
	saved       int64
}

// runEpochsDedup runs the exchange like runEpochs but lets the caller
// configure each scheduler (encoding, dedup budget) and returns per-rank
// wire/dedup totals.
func runEpochsDedup(t *testing.T, stores []*store.Local, n int, q float64, seed uint64,
	epochs, chunk int, enc data.Encoding, dedupBudget int64) []dedupRunStats {
	t.Helper()
	m := len(stores)
	out := make([]dedupRunStats, m)
	err := mpi.Run(m, func(c *mpi.Comm) error {
		sched, err := NewScheduler(c, stores[c.Rank()], q, n, seed)
		if err != nil {
			return err
		}
		if err := sched.SetSampleEncoding(enc); err != nil {
			return err
		}
		if err := sched.SetWireDedup(dedupBudget); err != nil {
			return err
		}
		for e := 0; e < epochs; e++ {
			if err := sched.Scheduling(e); err != nil {
				return err
			}
			if chunk > 0 {
				for posted := 0; posted < sched.Slots(); posted += chunk {
					if _, err := sched.Communicate(chunk); err != nil {
						return err
					}
				}
			}
			if err := sched.Synchronize(); err != nil {
				return err
			}
			if err := sched.CleanLocalStorage(); err != nil {
				return err
			}
		}
		sent, recv := sched.CumulativeWireTraffic()
		hits, saved := sched.CumulativeDedup()
		out[c.Rank()] = dedupRunStats{sent: sent, recv: recv, hits: int(hits), saved: saved}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// storeBits captures a store's full contents, feature bits included, for
// bitwise comparison between runs.
func storeBits(t *testing.T, st *store.Local) map[int]string {
	t.Helper()
	out := make(map[int]string, st.Len())
	for _, id := range st.IDs() {
		s, err := st.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		fmt.Fprintf(&b, "label=%d bytes=%d feats=", s.Label, s.Bytes)
		for _, f := range s.Features {
			fmt.Fprintf(&b, "%08x.", math.Float32bits(f))
		}
		out[id] = b.String()
	}
	return out
}

func requireSameStores(t *testing.T, a, b []*store.Local, what string) {
	t.Helper()
	for r := range a {
		ba, bb := storeBits(t, a[r]), storeBits(t, b[r])
		if len(ba) != len(bb) {
			t.Fatalf("%s: rank %d store sizes differ: %d vs %d", what, r, len(ba), len(bb))
		}
		for id, va := range ba {
			if vb, ok := bb[id]; !ok || va != vb {
				t.Fatalf("%s: rank %d sample %d differs bitwise", what, r, id)
			}
		}
	}
}

// TestDedupMultiEpochEquivalence is the tentpole correctness property: with
// deduplication enabled the training input is BITWISE identical to the
// dedup-off run — same samples, same placement, same feature bits — while
// the wire carries strictly fewer bytes and the hit counters prove refs
// actually replaced payloads. Two ranks force every non-self send onto the
// single opposite edge, so samples ping-pong and re-sends hit the mirror.
func TestDedupMultiEpochEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name string
		m    int
		q    float64
		enc  data.Encoding
	}{
		{"m2-fp32", 2, 1.0, data.EncodingFP32},
		{"m2-fp16exact", 2, 1.0, data.EncodingFP16Exact},
		{"m4-fp32", 4, 0.5, data.EncodingFP32},
		{"m4-fp16", 4, 0.5, data.EncodingFP16},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const n, epochs, seed = 64, 8, 17
			base, _ := mkStores(t, n, tc.m, seed, 0)
			lean, _ := mkStores(t, n, tc.m, seed, 0)
			baseStats := runEpochsDedup(t, base, n, tc.q, seed, epochs, 0, tc.enc, 0)
			leanStats := runEpochsDedup(t, lean, n, tc.q, seed, epochs, 0, tc.enc, 1<<20)
			requireSameStores(t, base, lean, tc.name)
			var hits int
			for r := range leanStats {
				hits += leanStats[r].hits
				if leanStats[r].saved < 0 {
					t.Fatalf("rank %d negative savings %d", r, leanStats[r].saved)
				}
				if leanStats[r].hits > 0 && leanStats[r].sent >= baseStats[r].sent {
					t.Fatalf("rank %d dedup hit %d refs but sent %d >= baseline %d bytes",
						r, leanStats[r].hits, leanStats[r].sent, baseStats[r].sent)
				}
			}
			if hits == 0 {
				t.Fatalf("no dedup hits across %d epochs — protocol never engaged", epochs)
			}
			var baseWire, leanWire int64
			for r := range baseStats {
				baseWire += baseStats[r].sent
				leanWire += leanStats[r].sent
			}
			t.Logf("%s: wire %d → %d bytes (%.2fx), %d ref hits",
				tc.name, baseWire, leanWire, float64(baseWire)/float64(leanWire), hits)
		})
	}
}

// TestDedupChunkedMatchesBulk: the dedup protocol is insensitive to how
// Communicate is chunked — the per-pair frame order (refs before payloads,
// batches in slot order) is what both caches replay, and chunking preserves
// it.
func TestDedupChunkedMatchesBulk(t *testing.T) {
	const n, m, epochs, seed = 96, 4, 4, 13
	bulk, _ := mkStores(t, n, m, seed, 0)
	chunked, _ := mkStores(t, n, m, seed, 0)
	runEpochsDedup(t, bulk, n, 0.5, seed, epochs, 0, data.EncodingFP16Exact, 1<<20)
	runEpochsDedup(t, chunked, n, 0.5, seed, epochs, 3, data.EncodingFP16Exact, 1<<20)
	requireSameStores(t, bulk, chunked, "bulk-vs-chunked")
}

// TestDedupTinyBudgetStillExact: a budget far too small to hold a pair's
// working set produces few or no hits but must never corrupt the exchange —
// mirror and segment evict in lockstep, so a miss is always safe.
func TestDedupTinyBudgetStillExact(t *testing.T) {
	const n, m, epochs, seed = 64, 2, 6, 29
	base, _ := mkStores(t, n, m, seed, 0)
	lean, _ := mkStores(t, n, m, seed, 0)
	runEpochsDedup(t, base, n, 1.0, seed, epochs, 0, data.EncodingFP32, 0)
	runEpochsDedup(t, lean, n, 1.0, seed, epochs, 0, data.EncodingFP32, 100) // ~2 samples
	requireSameStores(t, base, lean, "tiny-budget")
}

// TestDedupIngestRejections drives the receive-side protocol errors: a ref
// frame arriving with dedup disabled, a ref frame from self, and a ref
// naming a sample the per-source segment does not hold.
func TestDedupIngestRejections(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		st := store.NewLocal(0)
		sched, err := NewScheduler(c, st, 0.5, 16, 1)
		if err != nil {
			return err
		}
		refs := transport.SampleRefs{42}
		if err := sched.ingestFrame(refs, mpi.Status{Source: 1}); err == nil ||
			!strings.Contains(err.Error(), "dedup is disabled") {
			return fmt.Errorf("disabled-dedup ref frame: got %v", err)
		}
		if err := sched.SetWireDedup(1 << 20); err != nil {
			return err
		}
		if err := sched.ingestFrame(refs, mpi.Status{Source: 0}); err == nil ||
			!strings.Contains(err.Error(), "self-send") {
			return fmt.Errorf("self ref frame: got %v", err)
		}
		if err := sched.ingestFrame(refs, mpi.Status{Source: 1}); err == nil ||
			!strings.Contains(err.Error(), "absent from its segment") {
			return fmt.Errorf("unknown ref: got %v", err)
		}
		if err := sched.ingestFrame(3.14, mpi.Status{Source: 1}); err == nil ||
			!strings.Contains(err.Error(), "want []byte or transport.SampleRefs") {
			return fmt.Errorf("bad payload type: got %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSetWireDedupLifecycle pins the idle-only configuration guard and the
// invalidation hook.
func TestSetWireDedupLifecycle(t *testing.T) {
	err := mpi.Run(1, func(c *mpi.Comm) error {
		st := store.NewLocal(0)
		for i := 0; i < 4; i++ {
			if err := st.Put(data.Sample{ID: i, Features: []float32{1}}); err != nil {
				return err
			}
		}
		sched, err := NewScheduler(c, st, 0.5, 4, 1)
		if err != nil {
			return err
		}
		if err := sched.SetWireDedup(1 << 20); err != nil {
			return err
		}
		if err := sched.Scheduling(0); err != nil {
			return err
		}
		if err := sched.SetWireDedup(0); err == nil {
			return fmt.Errorf("SetWireDedup accepted mid-epoch reconfiguration")
		}
		if err := sched.SetSampleEncoding(data.EncodingFP16); err == nil {
			return fmt.Errorf("SetSampleEncoding accepted mid-epoch reconfiguration")
		}
		sched.Reset()
		if err := sched.SetWireDedup(0); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
