package shuffle

import (
	"testing"

	"plshuffle/internal/rng"
)

// labelsRoundRobin builds n labels cycling over c classes (the synthetic
// generator's layout).
func labelsRoundRobin(n, c int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i % c
	}
	return out
}

func TestLocalityZeroMatchesPartition(t *testing.T) {
	labels := labelsRoundRobin(120, 8)
	a, err := PartitionWithLocality(labels, 6, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(120, 6, 42)
	if err != nil {
		t.Fatal(err)
	}
	for r := range a {
		if len(a[r]) != len(b[r]) {
			t.Fatalf("rank %d sizes differ", r)
		}
		for i := range a[r] {
			if a[r][i] != b[r][i] {
				t.Fatalf("locality=0 deviates from Partition at rank %d index %d", r, i)
			}
		}
	}
}

func TestLocalityOneIsClassSorted(t *testing.T) {
	const n, c, m = 128, 16, 16
	labels := labelsRoundRobin(n, c)
	parts, err := PartitionWithLocality(labels, m, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	// With n/m == n/c, full locality gives every worker exactly one class.
	cov := ShardClassCoverage(parts, labels, c)
	for r, v := range cov {
		if v != 1.0/float64(c) {
			t.Fatalf("rank %d coverage %v, want exactly one class", r, v)
		}
	}
}

func TestLocalityCoversExactly(t *testing.T) {
	for _, loc := range []float64{0, 0.3, 0.7, 1} {
		labels := labelsRoundRobin(101, 7) // non-divisible
		parts, err := PartitionWithLocality(labels, 4, loc, 5)
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, 101)
		total := 0
		for _, part := range parts {
			for _, id := range part {
				if seen[id] {
					t.Fatalf("loc=%v: duplicate id %d", loc, id)
				}
				seen[id] = true
				total++
			}
		}
		if total != 101 {
			t.Fatalf("loc=%v: covered %d of 101", loc, total)
		}
	}
}

func TestLocalityCoverageMonotone(t *testing.T) {
	// Average class coverage per shard must not increase with locality.
	const n, c, m = 4096, 64, 32
	labels := labelsRoundRobin(n, c)
	prev := 2.0
	for _, loc := range []float64{0, 0.5, 0.8, 1} {
		parts, err := PartitionWithLocality(labels, m, loc, 9)
		if err != nil {
			t.Fatal(err)
		}
		cov := ShardClassCoverage(parts, labels, c)
		avg := 0.0
		for _, v := range cov {
			avg += v
		}
		avg /= float64(len(cov))
		if avg > prev+1e-9 {
			t.Fatalf("coverage increased with locality: %v at loc=%v (prev %v)", avg, loc, prev)
		}
		prev = avg
	}
}

func TestLocalityDeterministic(t *testing.T) {
	labels := labelsRoundRobin(256, 8)
	a, _ := PartitionWithLocality(labels, 8, 0.6, 11)
	b, _ := PartitionWithLocality(labels, 8, 0.6, 11)
	c, _ := PartitionWithLocality(labels, 8, 0.6, 12)
	same, diff := true, false
	for r := range a {
		for i := range a[r] {
			if a[r][i] != b[r][i] {
				same = false
			}
			if a[r][i] != c[r][i] {
				diff = true
			}
		}
	}
	if !same {
		t.Fatal("same seed differs")
	}
	if !diff {
		t.Fatal("different seeds identical")
	}
}

func TestLocalityErrors(t *testing.T) {
	labels := labelsRoundRobin(10, 2)
	if _, err := PartitionWithLocality(nil, 2, 0.5, 1); err == nil {
		t.Error("empty labels accepted")
	}
	if _, err := PartitionWithLocality(labels, 0, 0.5, 1); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := PartitionWithLocality(labels, 20, 0.5, 1); err == nil {
		t.Error("m>n accepted")
	}
	if _, err := PartitionWithLocality(labels, 2, 1.5, 1); err == nil {
		t.Error("locality>1 accepted")
	}
	if _, err := PartitionWithLocality(labels, 2, -0.1, 1); err == nil {
		t.Error("locality<0 accepted")
	}
}

func TestShardClassCoverageFull(t *testing.T) {
	labels := labelsRoundRobin(64, 4)
	parts := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}} // ids 0..3 are classes 0..3
	cov := ShardClassCoverage(parts, labels, 4)
	if cov[0] != 1 || cov[1] != 1 {
		t.Fatalf("coverage = %v, want full", cov)
	}
	single := [][]int{{0, 4, 8}} // all class 0
	cov = ShardClassCoverage(single, labels, 4)
	if cov[0] != 0.25 {
		t.Fatalf("coverage = %v, want 0.25", cov)
	}
}

// TestExchangeHomogenizesLocalShards verifies the recovery mechanism the
// accuracy experiments rely on: starting from fully class-local shards,
// repeated partial exchanges drive per-shard class coverage up toward the
// uniform-partition level.
func TestExchangeHomogenizesLocalShards(t *testing.T) {
	const n, c, m, q = 512, 16, 8, 0.3
	labels := labelsRoundRobin(n, c)
	parts, err := PartitionWithLocality(labels, m, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	avgCov := func(p [][]int) float64 {
		cov := ShardClassCoverage(p, labels, c)
		s := 0.0
		for _, v := range cov {
			s += v
		}
		return s / float64(len(cov))
	}
	before := avgCov(parts)
	// Simulate the exchange on ID sets only (no message passing needed):
	// apply each epoch's plans to the partitions.
	current := parts
	for epoch := 0; epoch < 8; epoch++ {
		plans := make([]ExchangePlan, m)
		for r := 0; r < m; r++ {
			p, err := PlanExchange(r, m, current[r], q, n, 3, epoch)
			if err != nil {
				t.Fatal(err)
			}
			plans[r] = p
		}
		next := make([][]int, m)
		for r := 0; r < m; r++ {
			sent := map[int]bool{}
			for _, id := range plans[r].SendIDs {
				sent[id] = true
			}
			for _, id := range current[r] {
				if !sent[id] {
					next[r] = append(next[r], id)
				}
			}
		}
		for r := 0; r < m; r++ {
			for i, id := range plans[r].SendIDs {
				d := plans[r].Dests[i]
				next[d] = append(next[d], id)
			}
		}
		current = next
	}
	after := avgCov(current)
	if before >= 0.5 {
		t.Fatalf("initial class-local coverage unexpectedly high: %v", before)
	}
	if after < 2.5*before {
		t.Fatalf("exchange did not homogenize shards: coverage %v -> %v", before, after)
	}
	// Shard sizes stay balanced through every epoch.
	for r := range current {
		if len(current[r]) != n/m {
			t.Fatalf("rank %d size %d after exchanges, want %d", r, len(current[r]), n/m)
		}
	}
}

func TestLocalityBlendIsBetweenExtremes(t *testing.T) {
	const n, c, m = 2048, 32, 16
	labels := labelsRoundRobin(n, c)
	cov := func(loc float64) float64 {
		parts, err := PartitionWithLocality(labels, m, loc, rng.New(1).Uint64())
		if err != nil {
			t.Fatal(err)
		}
		s := 0.0
		for _, v := range ShardClassCoverage(parts, labels, c) {
			s += v
		}
		return s / float64(m)
	}
	c0, cHalf, c1 := cov(0), cov(0.5), cov(1)
	if !(c1 < cHalf && cHalf < c0) {
		t.Fatalf("coverage not ordered: loc0=%v loc0.5=%v loc1=%v", c0, cHalf, c1)
	}
}
