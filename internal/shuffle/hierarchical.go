package shuffle

import (
	"fmt"

	"plshuffle/internal/rng"
)

// Stream salts for the hierarchical exchange's two permutation levels.
const (
	saltGroupDest uint64 = 0x96f0
	saltIntraDest uint64 = 0x1276
)

// PlanExchangeHierarchical computes a two-level exchange plan, the
// "hierarchical global exchange scheme that maps to the hierarchy of
// connection between computing nodes" the paper proposes as the remedy
// for the all-to-all congestion of the flat exchange at scale
// (Section V-F).
//
// Workers are grouped into size/groupSize groups (a group models the
// workers sharing one node or switch). For slot i the destination of
// worker (group a, index l) is (Q_i[a], P_i[l]), the composition of a
// shared-seed permutation Q_i of the groups with a shared-seed
// permutation P_i of the intra-group indices. The composition is still a
// permutation of all ranks — so the exchange stays perfectly balanced —
// but all members of a group send into the *same* destination group,
// collapsing the per-slot inter-node traffic pattern from up to M
// node-pairs to exactly M/groupSize aligned group-pairs.
func PlanExchangeHierarchical(rank, size, groupSize int, localIDs []int, q float64, totalN int, seed uint64, epoch int) (ExchangePlan, error) {
	if rank < 0 || rank >= size {
		return ExchangePlan{}, fmt.Errorf("shuffle: PlanExchangeHierarchical: rank %d out of [0,%d)", rank, size)
	}
	if groupSize <= 0 || size%groupSize != 0 {
		return ExchangePlan{}, fmt.Errorf("shuffle: PlanExchangeHierarchical: group size %d must divide world size %d", groupSize, size)
	}
	if q < 0 || q > 1 {
		return ExchangePlan{}, fmt.Errorf("shuffle: PlanExchangeHierarchical: fraction %v out of [0,1]", q)
	}
	k := Slots(q, totalN, size)
	if k > len(localIDs) {
		return ExchangePlan{}, fmt.Errorf("shuffle: PlanExchangeHierarchical: %d slots but only %d local samples on rank %d", k, len(localIDs), rank)
	}
	plan := ExchangePlan{Epoch: epoch, SendIDs: make([]int, k), Dests: make([]int, k)}
	if k == 0 {
		return plan, nil
	}
	groups := size / groupSize
	group := rank / groupSize
	index := rank % groupSize
	p := rng.NewStream(seed, saltSend, uint64(epoch), uint64(rank)).Perm(len(localIDs))
	groupPerm := make([]int, groups)
	intraPerm := make([]int, groupSize)
	for i := 0; i < k; i++ {
		rng.NewStream(seed, saltGroupDest, uint64(epoch), uint64(i)).PermInto(groupPerm)
		rng.NewStream(seed, saltIntraDest, uint64(epoch), uint64(i)).PermInto(intraPerm)
		plan.SendIDs[i] = localIDs[p[i]]
		plan.Dests[i] = groupPerm[group]*groupSize + intraPerm[index]
	}
	return plan, nil
}

// GroupAlignment verifies the hierarchy property of a set of per-rank
// hierarchical plans: for every slot, all ranks of one group send to a
// single destination group, and the destination groups across source
// groups form a permutation. It returns an error describing the first
// violation, or nil.
func GroupAlignment(plans []ExchangePlan, groupSize int) error {
	size := len(plans)
	if size == 0 || groupSize <= 0 || size%groupSize != 0 {
		return fmt.Errorf("shuffle: GroupAlignment: bad shape (%d plans, group size %d)", size, groupSize)
	}
	groups := size / groupSize
	slots := plans[0].Slots()
	for i := 0; i < slots; i++ {
		destGroupOf := make([]int, groups)
		for g := range destGroupOf {
			destGroupOf[g] = -1
		}
		for r := 0; r < size; r++ {
			g := r / groupSize
			dg := plans[r].Dests[i] / groupSize
			if destGroupOf[g] == -1 {
				destGroupOf[g] = dg
			} else if destGroupOf[g] != dg {
				return fmt.Errorf("slot %d: group %d sends to both group %d and %d", i, g, destGroupOf[g], dg)
			}
		}
		seen := make([]bool, groups)
		for g, dg := range destGroupOf {
			if dg < 0 || dg >= groups || seen[dg] {
				return fmt.Errorf("slot %d: destination groups are not a permutation (group %d -> %d)", i, g, dg)
			}
			seen[dg] = true
		}
	}
	return nil
}
