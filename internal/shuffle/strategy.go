// Package shuffle implements the paper's primary contribution: dataset
// partitioning, the balanced distributed sample exchange of Algorithm 1,
// and the epoch scheduler that overlaps the exchange with training
// (Section III). The three shuffling strategies are:
//
//   - Global (GS):  every worker draws its epoch's samples from a fresh
//     global permutation of the full dataset (PyTorch's
//     DistributedSampler default). Requires every sample to be reachable
//     by every worker (full dataset on the PFS or replicated locally).
//   - Local (LS):   workers keep their initial partition forever and only
//     re-shuffle it locally each epoch (Q = 0).
//   - PartialLocal: before each epoch, each worker exchanges a fraction Q
//     of its local samples with randomly chosen peers; the exchange is
//     balanced by construction (Q = 1 degenerates to a full redistribution,
//     Q = 0 to pure local shuffling).
//   - Corgi2: the hybrid offline/online scheme of Corgi² over the sharded
//     on-disk store (internal/store/shard): shards are reassigned across
//     workers every GroupEpochs epochs (offline chunk-level reshuffle, paid
//     as PFS refetches), and within each epoch samples are shuffled inside
//     cache-sized shard windows (online in-memory shuffle). No peer
//     exchange at all — the storage hierarchy is the shuffle medium.
package shuffle

import "fmt"

// Kind enumerates the shuffling strategies.
type Kind int

// Strategy kinds.
const (
	Global Kind = iota
	Local
	PartialLocal
	Corgi2
)

// Strategy selects a shuffling scheme; Q is only meaningful for
// PartialLocal, GroupEpochs only for Corgi2.
type Strategy struct {
	Kind Kind
	Q    float64
	// GroupEpochs is the Corgi2 epoch-group length: the offline chunk-level
	// reshuffle runs between groups, i.e. shard assignments change every
	// GroupEpochs epochs.
	GroupEpochs int
}

// GlobalShuffling returns the paper's baseline GS strategy.
func GlobalShuffling() Strategy { return Strategy{Kind: Global} }

// LocalShuffling returns the pure local strategy (Q = 0).
func LocalShuffling() Strategy { return Strategy{Kind: Local} }

// Partial returns the partial-local strategy with exchange fraction q.
func Partial(q float64) Strategy { return Strategy{Kind: PartialLocal, Q: q} }

// Corgi2Shuffling returns the hybrid offline/online strategy with shard
// reassignment every groupEpochs epochs.
func Corgi2Shuffling(groupEpochs int) Strategy {
	return Strategy{Kind: Corgi2, GroupEpochs: groupEpochs}
}

// EpochGroup returns the Corgi2 epoch group an epoch belongs to (0 for the
// other strategies, which never regroup).
func (s Strategy) EpochGroup(epoch int) int {
	if s.Kind != Corgi2 || s.GroupEpochs <= 0 {
		return 0
	}
	return epoch / s.GroupEpochs
}

// Validate reports configuration errors.
func (s Strategy) Validate() error {
	switch s.Kind {
	case Global, Local:
		return nil
	case PartialLocal:
		if s.Q < 0 || s.Q > 1 {
			return fmt.Errorf("shuffle: partial exchange fraction %v out of [0,1]", s.Q)
		}
		return nil
	case Corgi2:
		if s.GroupEpochs < 1 {
			return fmt.Errorf("shuffle: corgi2 group length %d must be at least 1 epoch", s.GroupEpochs)
		}
		return nil
	default:
		return fmt.Errorf("shuffle: unknown strategy kind %d", s.Kind)
	}
}

// ExchangeFraction returns the fraction of each worker's local samples
// exchanged per epoch: 0 for Local, Q for PartialLocal. For Global it
// returns 1, reflecting that a fresh global permutation re-assigns (up to)
// all local samples.
func (s Strategy) ExchangeFraction() float64 {
	switch s.Kind {
	case Global:
		return 1
	case Local, Corgi2:
		return 0
	default:
		return s.Q
	}
}

// String renders the strategy the way the paper labels its plots:
// "global", "local", "partial-0.1".
func (s Strategy) String() string {
	switch s.Kind {
	case Global:
		return "global"
	case Local:
		return "local"
	case PartialLocal:
		return fmt.Sprintf("partial-%g", s.Q)
	case Corgi2:
		return fmt.Sprintf("corgi2-g%d", s.GroupEpochs)
	default:
		return fmt.Sprintf("unknown(%d)", int(s.Kind))
	}
}

// StorageFactor returns the local storage requirement relative to N/M
// (Section III-A): LS needs 1×, PLS needs (1+Q)× because received samples
// land before transmitted ones are removed, GS needs M× (the full dataset).
func (s Strategy) StorageFactor(workers int) float64 {
	switch s.Kind {
	case Global:
		return float64(workers)
	case Local, Corgi2:
		return 1
	default:
		return 1 + s.Q
	}
}
