package shuffle_test

import (
	"fmt"
	"sort"
	"testing"

	"plshuffle/internal/data"
	"plshuffle/internal/mpi"
	"plshuffle/internal/shuffle"
	"plshuffle/internal/store"
	"plshuffle/internal/transport"
	"plshuffle/internal/transport/transporttest"
)

// coalesceSample builds the deterministic sample used by the coalescing
// tests, so every rank can reconstruct any sample from its ID alone.
func coalesceSample(id int) data.Sample {
	return data.Sample{ID: id, Label: id % 7, Features: []float32{float32(id), -float32(id), float32(id) * 0.5}, Bytes: 500}
}

// TestBatchedExchangeMatchesPerSampleReference is the batching property
// test: the coalesced exchange must deliver exactly the per-sample
// assignment of the (deterministic, shared-seed) exchange plan — same
// sample multiset, same contents — and its WireTraffic counters must equal
// the frame-exact byte accounting reconstructed independently from the
// plan, sample by sample, on both the send and receive side.
func TestBatchedExchangeMatchesPerSampleReference(t *testing.T) {
	const (
		m       = 4
		perRank = 40
		n       = m * perRank
		seed    = uint64(11)
		epoch   = 2
	)
	for _, q := range []float64{0.25, 1} {
		q := q
		t.Run(fmt.Sprintf("Q=%v", q), func(t *testing.T) {
			err := mpi.Run(m, func(c *mpi.Comm) error {
				parts, err := shuffle.Partition(n, m, seed)
				if err != nil {
					return err
				}
				st := store.NewLocal(0)
				for _, id := range parts[c.Rank()] {
					if err := st.Put(coalesceSample(id)); err != nil {
						return err
					}
				}
				sched, err := shuffle.NewScheduler(c, st, q, n, seed)
				if err != nil {
					return err
				}

				// Per-sample reference: recompute the plan the scheduler will
				// derive (same inputs, deterministic) and reconstruct, per
				// destination, the exact batch frames it must produce.
				plan, err := shuffle.PlanExchange(c.Rank(), c.Size(), st.IDs(), q, n, seed, epoch)
				if err != nil {
					return err
				}
				byDest := make([][]data.Sample, m)
				for i, id := range plan.SendIDs {
					d := plan.Dests[i]
					byDest[d] = append(byDest[d], coalesceSample(id))
				}
				var wantSent int64
				for d, batch := range byDest {
					if d != c.Rank() && len(batch) > 0 {
						wantSent += transport.FrameWireSize(data.EncodeSampleBatch(batch))
					}
				}
				// Share every rank's (id, dest) assignment so each rank knows
				// the exact multiset it must receive and from whom.
				pairs := make([]int64, 0, 2*len(plan.SendIDs))
				for i, id := range plan.SendIDs {
					pairs = append(pairs, int64(id), int64(plan.Dests[i]))
				}
				allPairs := mpi.AllgatherVarLen(c, pairs)
				wantIDs := make(map[int]int) // inbound id -> multiplicity
				var wantRecv int64
				for src, ps := range allPairs {
					var batch []data.Sample
					for i := 0; i < len(ps); i += 2 {
						if int(ps[i+1]) == c.Rank() {
							wantIDs[int(ps[i])]++
							batch = append(batch, coalesceSample(int(ps[i])))
						}
					}
					if src != c.Rank() && len(batch) > 0 {
						wantRecv += transport.FrameWireSize(data.EncodeSampleBatch(batch))
					}
				}

				// Run the real batched exchange.
				if err := sched.Scheduling(epoch); err != nil {
					return err
				}
				if err := sched.Synchronize(); err != nil {
					return err
				}
				got := sched.Received()
				if len(got) != len(wantIDs) {
					return fmt.Errorf("rank %d received %d samples, reference expects %d", c.Rank(), len(got), len(wantIDs))
				}
				for _, s := range got {
					if wantIDs[s.ID] == 0 {
						return fmt.Errorf("rank %d received unexpected (or duplicated) sample %d", c.Rank(), s.ID)
					}
					wantIDs[s.ID]--
					ref := coalesceSample(s.ID)
					if s.Label != ref.Label || s.Bytes != ref.Bytes || len(s.Features) != len(ref.Features) {
						return fmt.Errorf("rank %d sample %d corrupted: %+v", c.Rank(), s.ID, s)
					}
					for j, f := range s.Features {
						if f != ref.Features[j] {
							return fmt.Errorf("rank %d sample %d feature %d = %v, want %v", c.Rank(), s.ID, j, f, ref.Features[j])
						}
					}
				}
				sent, recv := sched.WireTraffic()
				if sent != wantSent {
					return fmt.Errorf("rank %d WireTraffic sent %d, per-sample reference %d", c.Rank(), sent, wantSent)
				}
				if recv != wantRecv {
					return fmt.Errorf("rank %d WireTraffic recv %d, per-sample reference %d", c.Rank(), recv, wantRecv)
				}
				// Conservation: globally, bytes sent == bytes received.
				tot := []int64{sent, recv}
				mpi.Allreduce(c, tot, mpi.OpSum)
				if tot[0] != tot[1] {
					return fmt.Errorf("global wire totals differ: sent %d recv %d", tot[0], tot[1])
				}
				return sched.CleanLocalStorage()
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestExchangeCoalescingFrameReduction pins the tentpole's headline effect:
// a bulk epoch exchange posts at most one frame per destination instead of
// one per sample, at least a 5× frame-count reduction for Q=0.25 at this
// scale (here 40 slots/rank collapse into ≤4 frames — 10×).
func TestExchangeCoalescingFrameReduction(t *testing.T) {
	const (
		m       = 4
		perRank = 160
		n       = m * perRank
		q       = 0.25
		seed    = uint64(3)
	)
	err := mpi.Run(m, func(c *mpi.Comm) error {
		parts, err := shuffle.Partition(n, m, seed)
		if err != nil {
			return err
		}
		st := store.NewLocal(0)
		for _, id := range parts[c.Rank()] {
			if err := st.Put(coalesceSample(id)); err != nil {
				return err
			}
		}
		sched, err := shuffle.NewScheduler(c, st, q, n, seed)
		if err != nil {
			return err
		}
		before := c.Transport().Stats().FramesSent
		if err := sched.RunEpochExchange(0); err != nil {
			return err
		}
		frames := c.Transport().Stats().FramesSent - before
		slots := int64(sched.Slots())
		if slots < 5*int64(m) {
			return fmt.Errorf("test underpowered: %d slots for %d ranks", slots, m)
		}
		if frames == 0 {
			return fmt.Errorf("rank %d sent no frames for %d slots", c.Rank(), slots)
		}
		if frames*5 > slots {
			return fmt.Errorf("rank %d sent %d frames for %d slots; want at least a 5x reduction", c.Rank(), frames, slots)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWireTrafficMatchesTCPBytes runs the exchange across real localhost
// TCP sockets and asserts WireTraffic's receive counter equals the
// transport's socket-level byte counter exactly: every byte the scheduler
// claims was received is a byte that actually crossed a socket (self-sends
// never touch the network and appear in neither counter).
func TestWireTrafficMatchesTCPBytes(t *testing.T) {
	const (
		m       = 4
		perRank = 32
		n       = m * perRank
		q       = 0.5
		seed    = uint64(19)
		epochs  = 2
	)
	err := transporttest.TCP().Run(m, func(c *mpi.Comm) error {
		parts, err := shuffle.Partition(n, m, seed)
		if err != nil {
			return err
		}
		st := store.NewLocal(0)
		for _, id := range parts[c.Rank()] {
			if err := st.Put(coalesceSample(id)); err != nil {
				return err
			}
		}
		sched, err := shuffle.NewScheduler(c, st, q, n, seed)
		if err != nil {
			return err
		}
		// Measure with absolute counters: the transport counts only
		// data-plane frames read off sockets (bootstrap hellos are excluded,
		// self-sends never hit a socket), so until the quiesce handshake
		// below, the only data frames ever addressed to this rank are
		// exchange frames — all drained and counted by Synchronize.
		var recvTotal int64
		for epoch := 0; epoch < epochs; epoch++ {
			if err := sched.Scheduling(epoch); err != nil {
				return err
			}
			if err := sched.Synchronize(); err != nil {
				return err
			}
			_, recv := sched.WireTraffic()
			recvTotal += recv
			if err := sched.CleanLocalStorage(); err != nil {
				return err
			}
		}
		// Exactness requires that no collective traffic (e.g. a barrier's
		// nil-payload frames from a faster rank) lands before this rank's
		// counter snapshot. The staged handshake below guarantees every frame
		// a rank receives pre-snapshot is either exchange traffic or the one
		// fixed-size "go" token:
		//   rank 0:  snapshot → go to each peer → collect acks → release all
		//   peer r:  recv go → snapshot (+go frame bytes) → ack 0 → recv release
		// Peers send nothing after their epoch loop until "go" (so rank 0's
		// window is clean), and nobody proceeds past the handshake until every
		// ack is in (so no later barrier frame can beat a snapshot).
		const (
			tagGo      = 9001
			tagAck     = 9002
			tagRelease = 9003
		)
		token := []byte{1}
		var verdict error
		snapshot := func(extra int64) {
			want := recvTotal + extra
			if got := c.Transport().Stats().BytesRecv; got != want {
				verdict = fmt.Errorf("rank %d: transport received %d bytes, WireTraffic accounts for %d (over %d epochs)", c.Rank(), got, want, epochs)
			} else if recvTotal == 0 {
				// With Q=0.5 and 4 ranks the chance every slot self-sends
				// across every epoch is effectively zero; an all-zero total
				// would make the equality vacuous.
				verdict = fmt.Errorf("rank %d: no wire traffic across %d epochs", c.Rank(), epochs)
			}
		}
		if c.Rank() == 0 {
			snapshot(0)
			for r := 1; r < m; r++ {
				c.Send(r, tagGo, token)
			}
			for r := 1; r < m; r++ {
				c.Recv(r, tagAck)
			}
			for r := 1; r < m; r++ {
				c.Send(r, tagRelease, token)
			}
		} else {
			c.Recv(0, tagGo)
			snapshot(transport.FrameWireSize(token))
			c.Send(0, tagAck, token)
			c.Recv(0, tagRelease)
		}
		if verdict != nil {
			return verdict
		}
		// The store balance must survive the batched path over TCP too.
		ids := st.IDs()
		local := make([]int64, len(ids))
		for i, id := range ids {
			local[i] = int64(id)
		}
		all := mpi.Gather(c, local, 0)
		if c.Rank() == 0 {
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			for i, id := range all {
				if id != int64(i) {
					return fmt.Errorf("sample ids no longer a permutation of 0..%d", n-1)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
