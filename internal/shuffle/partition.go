package shuffle

import (
	"fmt"

	"plshuffle/internal/rng"
)

// Stream salts keep the independent random streams of the scheme from
// colliding: the initial partition, the per-slot destination permutations,
// each worker's send selection, the local epoch orders, and the global
// sampler all draw from disjoint streams of the same user seed.
const (
	saltPartition uint64 = 0x5ea1
	saltDest      uint64 = 0xde57
	saltSend      uint64 = 0x5e4d
	saltEpoch     uint64 = 0xe90c
	saltGlobal    uint64 = 0x61b0
)

// Partition splits sample IDs [0, n) across m workers as Figure 2 of the
// paper describes: a seeded random permutation of the dataset is cut into m
// contiguous chunks, so "the worker to whom a sample belongs is determined
// by the order in which it appears in the permutation". When m does not
// divide n, the first n%m workers receive one extra sample.
//
// Every worker calling Partition with the same arguments computes the same
// result, so no communication is needed to agree on the initial layout.
func Partition(n, m int, seed uint64) ([][]int, error) {
	if n <= 0 || m <= 0 {
		return nil, fmt.Errorf("shuffle: Partition(n=%d, m=%d): arguments must be positive", n, m)
	}
	if m > n {
		return nil, fmt.Errorf("shuffle: Partition(n=%d, m=%d): more workers than samples", n, m)
	}
	perm := rng.NewStream(seed, saltPartition).Perm(n)
	out := make([][]int, m)
	base := n / m
	extra := n % m
	off := 0
	for r := 0; r < m; r++ {
		size := base
		if r < extra {
			size++
		}
		out[r] = append([]int(nil), perm[off:off+size]...)
		off += size
	}
	return out, nil
}

// Slots returns the number of exchange rounds per epoch for exchange
// fraction q on a dataset of n samples over m workers: floor(q * floor(n/m)).
// Using the *global* floor(n/m) — not each worker's local count — keeps the
// slot count identical on every rank, which the balanced per-slot rank
// permutations of Algorithm 1 require; flooring keeps the peak-storage
// bound (1+Q)·N/M of Section III-A exact.
func Slots(q float64, n, m int) int {
	if q <= 0 {
		return 0
	}
	perWorker := n / m
	k := int(q*float64(perWorker) + 1e-9)
	if k > perWorker {
		k = perWorker
	}
	return k
}

// EpochOrder returns a per-epoch, per-worker shuffled copy of ids: the
// local full shuffle the paper performs before the designated ratio is
// exchanged ("the actual samples exchanged are also randomized") and again
// when iterating batches.
func EpochOrder(ids []int, seed uint64, epoch, rank int) []int {
	out := append([]int(nil), ids...)
	r := rng.NewStream(seed, saltEpoch, uint64(epoch), uint64(rank))
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// GlobalEpochPartition computes epoch's global-shuffling assignment: a
// fresh shared-seed permutation of all n sample IDs, cut into m chunks.
// This is what PyTorch's DistributedSampler(shuffle=True) does each epoch.
func GlobalEpochPartition(n, m int, seed uint64, epoch int) ([][]int, error) {
	if n <= 0 || m <= 0 {
		return nil, fmt.Errorf("shuffle: GlobalEpochPartition(n=%d, m=%d): arguments must be positive", n, m)
	}
	perm := rng.NewStream(seed, saltGlobal, uint64(epoch)).Perm(n)
	out := make([][]int, m)
	base := n / m
	extra := n % m
	off := 0
	for r := 0; r < m; r++ {
		size := base
		if r < extra {
			size++
		}
		out[r] = append([]int(nil), perm[off:off+size]...)
		off += size
	}
	return out, nil
}
