package shuffle

import (
	"math"
	"sort"

	"plshuffle/internal/rng"
)

// Stream salt for importance-weighted ordering.
const saltImportance uint64 = 0x14b5

// WeightedOrder returns the ids ordered by an importance-weighted random
// ranking: ids with larger weight tend to appear earlier, with randomness
// injected via the Gumbel-top-k trick (key_i = log w_i + Gumbel noise;
// sorting keys descending is equivalent to successive sampling without
// replacement proportional to w).
//
// This implements the paper's Section IV-B outlook: "importance sampling
// schemes [Zhao & Zhang, ICML'15] can be expanded to investigate the
// effect of the sampling bias" — the trainer uses per-sample loss as the
// weight, both for the local iteration order and for choosing which
// samples to push into the global exchange (high-loss samples circulate,
// countering the bias of a static partition).
//
// Weights must be non-negative; ids with zero or missing weight receive a
// small floor so every sample retains a chance of being drawn. The result
// is deterministic in (seed, epoch, rank).
func WeightedOrder(ids []int, weights map[int]float64, seed uint64, epoch, rank int) []int {
	r := rng.NewStream(seed, saltImportance, uint64(epoch), uint64(rank))
	type keyed struct {
		id  int
		key float64
	}
	// Floor: a tenth of the mean weight, so unseen samples still circulate.
	var sum float64
	n := 0
	for _, id := range ids {
		if w, ok := weights[id]; ok && w > 0 {
			sum += w
			n++
		}
	}
	floor := 1e-9
	if n > 0 {
		floor = math.Max(floor, 0.1*sum/float64(n))
	}
	keys := make([]keyed, len(ids))
	for i, id := range ids {
		// Missing or non-positive weights get the floor; explicit weights
		// are respected so callers can express strong preferences.
		w := floor
		if v, ok := weights[id]; ok && v > 0 {
			w = v
		}
		// Gumbel(0,1) = -log(-log U).
		u := r.Float64()
		if u <= 0 {
			u = math.SmallestNonzeroFloat64
		}
		g := -math.Log(-math.Log(u))
		keys[i] = keyed{id: id, key: math.Log(w) + g}
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].key != keys[b].key {
			return keys[a].key > keys[b].key
		}
		return keys[a].id < keys[b].id
	})
	out := make([]int, len(ids))
	for i, k := range keys {
		out[i] = k.id
	}
	return out
}
