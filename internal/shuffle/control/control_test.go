package control

import (
	"testing"

	"plshuffle/internal/analysis"
)

// testPolicy uses exactly-representable binary fractions (1/16 steps) so
// the pinned trajectories below compare against exact float64 literals —
// the same bitwise-determinism property the live protocol guarantees.
func testPolicy() analysis.QPolicy {
	p := analysis.DefaultQPolicy()
	p.Step = 0.0625
	p.MinQ = 0.0625
	p.MaxQ = 0.5
	return p
}

// epochObs is one epoch's gathered observations; world < 0 means "shrink to
// |world| ranks and re-adopt the current Q before this epoch's decision"
// (the degrade path's re-synchronization).
type epochObs struct {
	obs   []Obs
	world int
}

// TestTrajectories replays canned multi-epoch stat traces — no live world —
// and pins the exact Q value and reason of every decision.
func TestTrajectories(t *testing.T) {
	const n, m, b = 50000, 4, 16
	flat := func(skew, comm float64, ranks int) []Obs {
		obs := make([]Obs, ranks)
		for i := range obs {
			obs[i] = Obs{Skew: skew, CommRatio: comm}
		}
		return obs
	}
	cases := []struct {
		name        string
		q0          float64
		trace       []epochObs
		wantQ       []float64
		wantReasons []string
	}{
		{
			// Exchange fully hidden, exposure representative: the
			// controller must not move a Q that is working.
			name: "compute-bound",
			q0:   0.25,
			trace: []epochObs{
				{obs: flat(0.01, 0.2, m)},
				{obs: flat(0.015, 0.3, m)},
				{obs: flat(0.01, 0.25, m)},
			},
			wantQ:       []float64{0.25, 0.25, 0.25},
			wantReasons: []string{"hold", "hold", "hold"},
		},
		{
			// Modeled exchange cost above compute on every rank: walk Q
			// down a step per epoch until the floor, then report the clamp.
			name: "comm-bound",
			q0:   0.25,
			trace: []epochObs{
				{obs: flat(0.005, 2.5, m)},
				{obs: flat(0.005, 2.5, m)},
				{obs: flat(0.005, 2.5, m)},
				{obs: flat(0.005, 2.5, m)},
			},
			wantQ:       []float64{0.1875, 0.125, 0.0625, 0.0625},
			wantReasons: []string{"lower-hidden", "lower-hidden", "lower-hidden", "lower-clamp"},
		},
		{
			// One rank's exposure skews hard (the max governs even if the
			// others look fine): walk Q up to the ceiling, then clamp.
			name: "skewed-exposure",
			q0:   0.25,
			trace: []epochObs{
				{obs: []Obs{{Skew: 0.01, CommRatio: 0.2}, {Skew: 0.3, CommRatio: 0.2}, {Skew: 0.01, CommRatio: 0.2}, {Skew: 0.01, CommRatio: 0.2}}},
				{obs: flat(0.3, 0.2, m)},
				{obs: flat(0.3, 0.2, m)},
				{obs: flat(0.3, 0.2, m)},
				{obs: flat(0.3, 0.2, m)},
			},
			wantQ:       []float64{0.3125, 0.375, 0.4375, 0.5, 0.5},
			wantReasons: []string{"raise-skew", "raise-skew", "raise-skew", "raise-skew", "raise-clamp"},
		},
		{
			// A rank dies after epoch 1: the survivors shrink the world,
			// re-adopt the running Q, and the controller keeps deciding
			// from the same trajectory position — now under the survivors'
			// (larger) non-domination threshold and their skewed exposure.
			name: "degraded-world",
			q0:   0.25,
			trace: []epochObs{
				{obs: flat(0.01, 0.2, m)},
				{obs: flat(0.01, 0.2, m)},
				{obs: flat(0.1, 0.2, m-1), world: -(m - 1)},
				{obs: flat(0.1, 0.2, m-1)},
			},
			wantQ:       []float64{0.25, 0.25, 0.3125, 0.375},
			wantReasons: []string{"hold", "hold", "raise-skew", "raise-skew"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := New(Config{N: n, M: m, B: b, Policy: testPolicy()}, tc.q0)
			if err != nil {
				t.Fatal(err)
			}
			for e, step := range tc.trace {
				if step.world < 0 {
					c.SetWorld(-step.world)
					c.Adopt(c.Q())
				}
				d, err := c.Decide(e, step.obs)
				if err != nil {
					t.Fatalf("epoch %d: %v", e, err)
				}
				if d.Q != tc.wantQ[e] || d.Reason != tc.wantReasons[e] {
					t.Fatalf("epoch %d: decision (%v, %q), want (%v, %q)",
						e, d.Q, d.Reason, tc.wantQ[e], tc.wantReasons[e])
				}
				if c.Q() != d.Q {
					t.Fatalf("epoch %d: controller q %v diverged from decision %v", e, c.Q(), d.Q)
				}
				if d.Epoch != e {
					t.Fatalf("epoch %d: decision stamped epoch %d", e, d.Epoch)
				}
			}
		})
	}
}

// TestNewClampsInitialQ: the starting fraction respects the operator's
// clamp range from epoch 0.
func TestNewClampsInitialQ(t *testing.T) {
	cfg := Config{N: 50000, M: 4, B: 16, Policy: testPolicy()}
	for _, tc := range []struct{ q0, want float64 }{
		{0.25, 0.25},
		{0.01, 0.0625},
		{0.9, 0.5},
	} {
		c, err := New(cfg, tc.q0)
		if err != nil {
			t.Fatal(err)
		}
		if c.Q() != tc.want {
			t.Errorf("New(q0=%v): Q=%v, want %v", tc.q0, c.Q(), tc.want)
		}
	}
}

// TestInvalidInputs: bad world shapes, fractions, and empty observation
// sets must error instead of deciding garbage.
func TestInvalidInputs(t *testing.T) {
	pol := testPolicy()
	if _, err := New(Config{N: 0, M: 4, B: 16, Policy: pol}, 0.25); err == nil {
		t.Error("New accepted n=0")
	}
	if _, err := New(Config{N: 100, M: 1, B: 16, Policy: pol}, 0.25); err == nil {
		t.Error("New accepted m=1")
	}
	if _, err := New(Config{N: 100, M: 4, B: 0, Policy: pol}, 0.25); err == nil {
		t.Error("New accepted b=0")
	}
	if _, err := New(Config{N: 100, M: 4, B: 16, Policy: pol}, 1.5); err == nil {
		t.Error("New accepted q0=1.5")
	}
	bad := pol
	bad.Step = 0
	if _, err := New(Config{N: 100, M: 4, B: 16, Policy: bad}, 0.25); err == nil {
		t.Error("New accepted a zero-step policy")
	}
	c, err := New(Config{N: 100, M: 4, B: 16, Policy: pol}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decide(0, nil); err == nil {
		t.Error("Decide accepted an empty observation set")
	}
}
