// Package control implements the closed-loop shuffle controller
// (DESIGN.md §16): a per-epoch state machine that retunes the exchange
// fraction Q online, raising it when the non-domination condition
// ε ≤ sqrt(b·|M|/|N|) is at risk or the per-class exposure skews past a
// bound, and lowering it when the modeled exchange cost stops hiding behind
// compute. The decision geometry itself is analysis.DecideQ, a pure
// function; this package owns the trajectory — the current Q, the world
// shape it was decided for, and the reduction of per-rank observations into
// one signal.
//
// Determinism contract: Decide consumes only deterministic observations
// (label-histogram skew, modeled byte/flop cost ratios — never wall-clock),
// reduces them with order-independent maxima, and steps a pure function, so
// the full Q trajectory is a function of (config, seed). Two same-seed
// worlds replay it bitwise; one world broadcasts each decision so every
// rank applies the identical float64 before the same Scheduling.
package control

import (
	"fmt"

	"plshuffle/internal/analysis"
)

// Config fixes the world shape and policy a controller decides under.
type Config struct {
	N int // dataset size |N|
	M int // live workers |M| (update via SetWorld on shrink/grow)
	B int // local batch size b
	// Policy parameterizes the decision regions; zero value means
	// analysis.DefaultQPolicy with the given clamps (if any).
	Policy analysis.QPolicy
}

// Obs is one rank's deterministic observation of an epoch.
type Obs struct {
	// Skew is the total-variation distance between the label distribution
	// the rank trained on and the global label distribution, in [0,1].
	Skew float64
	// CommRatio is the rank's modeled exchange-over-compute cost ratio.
	CommRatio float64
}

// Decision is the outcome of one epoch's control step — the value the root
// broadcasts as transport.QDecision.
type Decision struct {
	Epoch  int
	Q      float64 // exchange fraction for the NEXT epoch
	Reason string  // canonical analysis reason label
}

// Controller tracks the Q trajectory of one training run. It is not
// goroutine-safe: the training loop owns it and calls it between epochs.
type Controller struct {
	cfg Config
	q   float64
}

// New builds a controller starting from q0, clamped into the policy's
// [MinQ, MaxQ] so the first epoch already respects the operator's bounds.
func New(cfg Config, q0 float64) (*Controller, error) {
	if err := cfg.Policy.Validate(); err != nil {
		return nil, err
	}
	if cfg.N <= 0 || cfg.M <= 1 || cfg.B <= 0 {
		return nil, fmt.Errorf("control: world shape n=%d m=%d b=%d (need n>0, m>1, b>0)", cfg.N, cfg.M, cfg.B)
	}
	if q0 < 0 || q0 > 1 {
		return nil, fmt.Errorf("control: initial fraction %v out of [0,1]", q0)
	}
	if q0 < cfg.Policy.MinQ {
		q0 = cfg.Policy.MinQ
	}
	if q0 > cfg.Policy.MaxQ {
		q0 = cfg.Policy.MaxQ
	}
	return &Controller{cfg: cfg, q: q0}, nil
}

// Q returns the exchange fraction currently in force.
func (c *Controller) Q() float64 { return c.q }

// Adopt overwrites the trajectory position with a broadcast or restored
// value: a non-root rank applying the root's decision, a survivor applying
// the new root's Q after a shrink, a joiner or resumed rank syncing to the
// running world.
func (c *Controller) Adopt(q float64) { c.q = q }

// SetWorld updates the live worker count after a membership change; the
// non-domination threshold sqrt(b·m/n) moves with it.
func (c *Controller) SetWorld(m int) { c.cfg.M = m }

// Decide reduces the gathered per-rank observations into one signal and
// steps the decision function. The reduction is the worst rank on each
// axis: the most skewed rank justifies more exchange, and the exchange must
// hide behind compute on EVERY rank, so the maximum ratio governs. Maxima
// are order-independent, keeping the decision invariant to gather order.
func (c *Controller) Decide(epoch int, obs []Obs) (Decision, error) {
	if len(obs) == 0 {
		return Decision{}, fmt.Errorf("control: epoch %d: no observations", epoch)
	}
	var skew, comm float64
	for _, o := range obs {
		if o.Skew > skew {
			skew = o.Skew
		}
		if o.CommRatio > comm {
			comm = o.CommRatio
		}
	}
	next, reason, err := analysis.DecideQ(analysis.QSignal{
		N: c.cfg.N, M: c.cfg.M, B: c.cfg.B,
		Q: c.q, Skew: skew, CommRatio: comm,
	}, c.cfg.Policy)
	if err != nil {
		return Decision{}, fmt.Errorf("control: epoch %d: %w", epoch, err)
	}
	c.q = next
	return Decision{Epoch: epoch, Q: next, Reason: reason}, nil
}
