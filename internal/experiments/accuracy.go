package experiments

import (
	"fmt"
	"math"

	"plshuffle/internal/data"
	"plshuffle/internal/metrics"
	"plshuffle/internal/nn"
	"plshuffle/internal/shuffle"
	"plshuffle/internal/train"
)

// scalePoint is one subplot of an accuracy figure: a proxy worker count
// standing in for a paper-scale GPU count, with the strategies compared
// there.
type scalePoint struct {
	Workers    int
	PaperLabel string // e.g. "2048 GPUs"
	Strategies []shuffle.Strategy
	Batch      int  // overrides the spec batch when non-zero
	UseLARS    bool // the paper applies LARS at large scale
}

// accuracySpec configures one accuracy experiment (one Figure 5/6/7a/8
// panel family).
type accuracySpec struct {
	ID         string
	Title      string
	DatasetKey string
	Model      string
	Scales     []scalePoint
	Epochs     int
	Batch      int
	BaseLR     float32
	// LocalityCoef calibrates shard-statistics divergence: the partition
	// class-locality used at a scale with S samples per worker is
	// min(1, LocalityCoef/sqrt(S)), encoding that small shards of real
	// (heavy-tailed, clustered) data diverge from the global distribution
	// roughly as 1/sqrt(S). The coefficient is calibrated per
	// (dataset, model) pair because the paper's observed sensitivity is
	// model-dependent (Fig 5c vs 5f) and an MLP proxy cannot reproduce
	// conv-architecture differences endogenously; EXPERIMENTS.md records
	// each value.
	LocalityCoef float64
	// ShortEpochs overrides the default shortened epoch count (Epochs/3)
	// for experiments whose dynamics need a minimum horizon — e.g. Q=0.1
	// recovery, where after E epochs a (0.9)^E fraction of the original
	// shard is still in place.
	ShortEpochs int
	// Pretrain warm-starts every run from a short global-shuffling
	// pretraining pass (the paper's pretrained ResNet50 for Stanford Cars).
	Pretrain bool
	Notes    []string
}

// localityAt returns the partition locality for a scale with the given
// samples-per-worker count.
func (s accuracySpec) localityAt(samplesPerWorker int) float64 {
	if s.LocalityCoef <= 0 {
		return 0
	}
	return math.Min(1, s.LocalityCoef/math.Sqrt(float64(samplesPerWorker)))
}

func (s accuracySpec) epochs(opts Options) int {
	if opts.Short {
		if s.ShortEpochs > 0 {
			return s.ShortEpochs
		}
		e := s.Epochs / 3
		if e < 4 {
			e = 4
		}
		return e
	}
	return s.Epochs
}

// runAccuracy executes the spec: real distributed SGD per (scale,
// strategy), one figure per scale (validation accuracy vs epoch) plus a
// final-accuracy summary table.
func runAccuracy(spec accuracySpec, opts Options) (*Result, error) {
	ds, err := data.LoadProxy(spec.DatasetKey)
	if err != nil {
		return nil, err
	}
	modelSpec, err := nn.ProxySpec(spec.Model)
	if err != nil {
		return nil, err
	}
	modelSpec = modelSpec.WithData(ds.FeatureDim, ds.Classes)
	epochs := spec.epochs(opts)
	res := &Result{ID: spec.ID, Title: spec.Title, Notes: spec.Notes}
	summary := metrics.NewTable(fmt.Sprintf("%s: final top-1 validation accuracy (%d epochs)", spec.ID, epochs))
	summary.Header("scale", "strategy", "final acc", "best acc", "peak storage/worker")

	for _, sc := range spec.Scales {
		fig := metrics.NewFigure(
			fmt.Sprintf("%s — %s (proxy M=%d)", spec.Title, sc.PaperLabel, sc.Workers),
			"epoch", "top-1 accuracy")
		for _, strat := range sc.Strategies {
			batch := spec.Batch
			if sc.Batch != 0 {
				batch = sc.Batch
			}
			cfg := train.Config{
				Workers:           sc.Workers,
				Strategy:          strat,
				Dataset:           ds,
				Model:             modelSpec,
				Epochs:            epochs,
				BatchSize:         batch,
				BaseLR:            spec.BaseLR,
				Momentum:          0.9,
				WeightDecay:       1e-4,
				UseLARS:           sc.UseLARS,
				Seed:              opts.seed(),
				PartitionLocality: spec.localityAt(len(ds.Train) / sc.Workers),
				Schedule: nn.StepDecay{
					Base: spec.BaseLR, Gamma: 0.2,
					Milestones: []float64{float64(epochs) * 0.5, float64(epochs) * 0.75},
				},
			}
			opts.applyWire(&cfg)
			if sc.UseLARS {
				cfg.Schedule = nn.Warmup{Inner: cfg.Schedule, Epochs: float64(epochs) / 8, StartFactor: 0.25}
			}
			if spec.Pretrain {
				warm, err := pretrainWeights(ds, modelSpec, opts)
				if err != nil {
					return nil, err
				}
				cfg.WarmStart = warm
			}
			r, err := train.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("%s %s M=%d: %w", spec.ID, strat, sc.Workers, err)
			}
			series := fig.AddSeries(strat.String())
			for _, e := range r.Epochs {
				series.Add(float64(e.Epoch+1), e.ValAcc)
			}
			summary.Row(sc.PaperLabel, strat.String(),
				fmt.Sprintf("%.4f", r.FinalValAcc),
				fmt.Sprintf("%.4f", r.BestValAcc),
				metrics.FormatBytes(r.PeakStorageBytes))
		}
		res.Figures = append(res.Figures, fig)
	}
	res.Tables = append(res.Tables, summary)
	return res, nil
}

// pretrainWeights runs a short global-shuffling pretraining pass and
// returns the resulting weights (Figure 5d's pretrained model).
func pretrainWeights(ds *data.Dataset, modelSpec nn.ModelSpec, opts Options) ([]nn.Param, error) {
	r, err := train.Run(train.Config{
		Workers: 4, Strategy: shuffle.GlobalShuffling(), Dataset: ds,
		Model: modelSpec, Epochs: 4, BatchSize: 32, BaseLR: 0.05,
		Momentum: 0.9, WeightDecay: 1e-4, Seed: opts.seed() + 17,
	})
	if err != nil {
		return nil, err
	}
	return r.FinalParams, nil
}

func gsLsPartial(qs ...float64) []shuffle.Strategy {
	out := []shuffle.Strategy{shuffle.GlobalShuffling(), shuffle.LocalShuffling()}
	for _, q := range qs {
		out = append(out, shuffle.Partial(q))
	}
	return out
}

// Fig5a: ResNet50 on ImageNet-1K at 512 and 2048 GPUs. LS matches GS at
// 512; at 2048 a gap opens (paper: ~9%) and partial-0.3 restores accuracy.
func Fig5a(opts Options) (*Result, error) {
	return runAccuracy(accuracySpec{
		ID: "fig5a", Title: "ResNet50 / ImageNet-1K (ABCI)",
		DatasetKey: "imagenet-1k", Model: "resnet50",
		Scales: []scalePoint{
			{Workers: 8, PaperLabel: "512 GPUs", Strategies: gsLsPartial()},
			{Workers: 32, PaperLabel: "2048 GPUs", Strategies: gsLsPartial(0.3)},
		},
		Epochs: 18, Batch: 16, BaseLR: 0.05, LocalityCoef: 12,
		Notes: []string{"paper: LS == GS at 512 GPUs; ~9% gap at 2048 GPUs closed by partial-0.3."},
	}, opts)
}

// Fig5b: DenseNet161 on ImageNet-1K — LS matches GS at both scales.
func Fig5b(opts Options) (*Result, error) {
	return runAccuracy(accuracySpec{
		ID: "fig5b", Title: "DenseNet161 / ImageNet-1K (ABCI)",
		DatasetKey: "imagenet-1k", Model: "densenet161",
		Scales: []scalePoint{
			{Workers: 8, PaperLabel: "256 GPUs", Strategies: gsLsPartial()},
			{Workers: 16, PaperLabel: "1024 GPUs", Strategies: gsLsPartial()},
		},
		Epochs: 18, Batch: 16, BaseLR: 0.05, LocalityCoef: 8,
		Notes: []string{"paper: local shuffling achieves the same accuracy as global shuffling."},
	}, opts)
}

// Fig5c: WideResNet-28 on CIFAR-100 — LS matches GS even though each of
// the 128 workers only holds ~390 samples.
func Fig5c(opts Options) (*Result, error) {
	return runAccuracy(accuracySpec{
		ID: "fig5c", Title: "WideResNet-28 / CIFAR-100 (ABCI)",
		DatasetKey: "cifar-100", Model: "wideresnet28",
		Scales: []scalePoint{
			{Workers: 16, PaperLabel: "128 GPUs", Strategies: gsLsPartial()},
		},
		Epochs: 18, Batch: 16, BaseLR: 0.05, LocalityCoef: 6,
		Notes: []string{"paper: same accuracy for local and global shuffling (the wide, shallow model is robust)."},
	}, opts)
}

// Fig5d: pretrained ResNet50 fine-tuned on Stanford Cars — LS matches GS.
func Fig5d(opts Options) (*Result, error) {
	return runAccuracy(accuracySpec{
		ID: "fig5d", Title: "ResNet50 (pretrained) / Stanford Cars (ABCI)",
		DatasetKey: "stanford-cars", Model: "resnet50",
		Scales: []scalePoint{
			{Workers: 16, PaperLabel: "64 GPUs", Strategies: gsLsPartial()},
		},
		Epochs: 12, Batch: 8, BaseLR: 0.01, LocalityCoef: 4, Pretrain: true,
		Notes: []string{"paper: fine-tuning from a pretrained model; ~128 samples per worker, yet LS == GS."},
	}, opts)
}

// Fig5e: ResNet50 on ImageNet-50 — the most shuffle-sensitive case: up to
// a 30% gap at 128 GPUs; an exchange rate of 0.7 is needed to approach GS.
func Fig5e(opts Options) (*Result, error) {
	return runAccuracy(accuracySpec{
		ID: "fig5e", Title: "ResNet50 / ImageNet-50 (ABCI)",
		DatasetKey: "imagenet-50", Model: "resnet50",
		Scales: []scalePoint{
			{Workers: 8, PaperLabel: "32 GPUs", Strategies: gsLsPartial(0.3)},
			{Workers: 32, PaperLabel: "128 GPUs", Strategies: gsLsPartial(0.1, 0.3, 0.7)},
		},
		Epochs: 20, Batch: 16, BaseLR: 0.05, LocalityCoef: 18,
		Notes: []string{"paper: ~10% LS gap at 32 GPUs, up to 30% at 128 GPUs; partial-0.7 required to approach GS."},
	}, opts)
}

// Fig5f: Inception-v4 on CIFAR-100 — unlike WideResNet (Fig 5c), the
// deeper batch-norm stack degrades under LS; partial-0.3 restores it.
func Fig5f(opts Options) (*Result, error) {
	return runAccuracy(accuracySpec{
		ID: "fig5f", Title: "Inception-v4 / CIFAR-100 (ABCI)",
		DatasetKey: "cifar-100", Model: "inceptionv4",
		Scales: []scalePoint{
			{Workers: 16, PaperLabel: "128 GPUs", Strategies: gsLsPartial(0.1, 0.3)},
		},
		Epochs: 18, Batch: 8, BaseLR: 0.03, LocalityCoef: 17,
		Notes: []string{"paper: some models are more sensitive to sample diversity — Inception-v4 degrades under LS on the same dataset where WideResNet-28 does not."},
	}, opts)
}

// Fig6: strong scaling of ResNet50/ImageNet-1K on Fugaku with a fixed
// global batch (65,536 in the paper): LS accuracy decreases as workers
// grow (292 samples/worker at 4,096), partial-0.1 restores GS accuracy.
func Fig6(opts Options) (*Result, error) {
	return runAccuracy(accuracySpec{
		ID: "fig6", Title: "ResNet50 / ImageNet-1K strong scaling (Fugaku, fixed global batch)",
		DatasetKey: "imagenet-1k", Model: "resnet50",
		Scales: []scalePoint{
			{Workers: 16, PaperLabel: "2048 workers", Strategies: gsLsPartial(0.1), Batch: 16, UseLARS: true},
			{Workers: 64, PaperLabel: "4096 workers", Strategies: gsLsPartial(0.1), Batch: 4, UseLARS: true},
		},
		Epochs: 20, ShortEpochs: 14, Batch: 16, BaseLR: 0.08, LocalityCoef: 12,
		Notes: []string{
			"global batch is fixed (proxy 256 samples) while workers grow; paper: LS decreases with scale, partial-0.1 matches GS up to 4,096 workers storing only ~0.03% of the dataset each.",
		},
	}, opts)
}

// Fig7a: DeepCAM validation accuracy — the dataset does not fit local
// storage, so there is no GS baseline; partial shuffling improves over LS
// by ~2% at 1,024 GPUs and ~1% at 2,048 GPUs.
func Fig7a(opts Options) (*Result, error) {
	return runAccuracy(accuracySpec{
		ID: "fig7a", Title: "DeepCAM validation accuracy (ABCI, no GS baseline)",
		DatasetKey: "deepcam", Model: "deepcam",
		Scales: []scalePoint{
			{Workers: 16, PaperLabel: "1024 GPUs", Strategies: []shuffle.Strategy{
				shuffle.LocalShuffling(), shuffle.Partial(0.25), shuffle.Partial(0.5), shuffle.Partial(0.9),
			}},
			{Workers: 32, PaperLabel: "2048 GPUs", Strategies: []shuffle.Strategy{
				shuffle.LocalShuffling(), shuffle.Partial(0.9),
			}},
		},
		Epochs: 16, Batch: 8, BaseLR: 0.03, LocalityCoef: 6,
		Notes: []string{
			"DeepCAM (8.2 TiB) cannot be replicated to local storage, so the paper reports no global-shuffling accuracy; partial shuffling improves on pure local access.",
		},
	}, opts)
}

// Fig8 regenerates the pretrain/fine-tune experiment: upstream training of
// ResNet50 on ImageNet-21K (where LS lags GS by ~3% at 2,048 GPUs) followed
// by downstream fine-tuning on ImageNet-1K, where the difference vanishes.
func Fig8(opts Options) (*Result, error) {
	up, err := data.LoadProxy("imagenet-21k")
	if err != nil {
		return nil, err
	}
	down, err := data.LoadProxy("imagenet-1k")
	if err != nil {
		return nil, err
	}
	modelUp, err := nn.ProxySpec("resnet50")
	if err != nil {
		return nil, err
	}
	upSpec := modelUp.WithData(up.FeatureDim, up.Classes)
	downSpec := modelUp.WithData(down.FeatureDim, down.Classes)

	epochs := 18
	downEpochs := 12
	if opts.Short {
		epochs, downEpochs = 6, 4
	}
	res := &Result{ID: "fig8", Title: "Upstream ImageNet-21K pretraining, downstream ImageNet-1K fine-tuning"}
	upFig := metrics.NewFigure("Figure 8(a): upstream top-1 accuracy (proxy M=24)", "epoch", "top-1 accuracy")
	downFig := metrics.NewFigure("Figure 8(b): downstream top-1 accuracy (proxy M=8)", "epoch", "top-1 accuracy")
	summary := metrics.NewTable("fig8: upstream vs downstream final accuracy")
	summary.Header("upstream strategy", "upstream acc", "downstream acc")

	for _, strat := range gsLsPartial(0.1) {
		upRes, err := train.Run(train.Config{
			Workers: 24, Strategy: strat, Dataset: up, Model: upSpec,
			Epochs: epochs, BatchSize: 16, BaseLR: 0.05, Momentum: 0.9,
			WeightDecay: 1e-4, Seed: opts.seed(), PartitionLocality: 0.9,
			Schedule: nn.StepDecay{Base: 0.05, Gamma: 0.2,
				Milestones: []float64{float64(epochs) * 0.5, float64(epochs) * 0.75}},
		})
		if err != nil {
			return nil, fmt.Errorf("fig8 upstream %s: %w", strat, err)
		}
		s := upFig.AddSeries(strat.String())
		for _, e := range upRes.Epochs {
			s.Add(float64(e.Epoch+1), e.ValAcc)
		}

		// Downstream: transfer the hidden layers (the classifier head has
		// a different class count) and fine-tune with global shuffling.
		warm, err := downSpec.Build(opts.seed(), 1)
		if err != nil {
			return nil, err
		}
		nn.TransferWeights(warm.Params(), upRes.FinalParams)
		downRes, err := train.Run(train.Config{
			Workers: 8, Strategy: shuffle.GlobalShuffling(), Dataset: down,
			Model: downSpec, Epochs: downEpochs, BatchSize: 16, BaseLR: 0.02,
			Momentum: 0.9, WeightDecay: 1e-4, Seed: opts.seed() + 3,
			WarmStart: warm.Params(),
		})
		if err != nil {
			return nil, fmt.Errorf("fig8 downstream after %s: %w", strat, err)
		}
		sd := downFig.AddSeries("upstream-" + strat.String())
		for _, e := range downRes.Epochs {
			sd.Add(float64(e.Epoch+1), e.ValAcc)
		}
		summary.Row(strat.String(),
			fmt.Sprintf("%.4f", upRes.FinalValAcc),
			fmt.Sprintf("%.4f", downRes.FinalValAcc))
	}
	res.Figures = []*metrics.Figure{upFig, downFig}
	res.Tables = []*metrics.Table{summary}
	res.Notes = []string{
		"paper: upstream LS lags GS by ~3% at 2,048 GPUs, but downstream fine-tuning accuracy is unaffected — (partial) local shuffling can cut pretraining cost without hurting the final task.",
	}
	return res, nil
}
