package experiments

import (
	"fmt"

	"plshuffle/internal/data"
	"plshuffle/internal/metrics"
	"plshuffle/internal/nn"
	"plshuffle/internal/shuffle"
	"plshuffle/internal/train"
)

// NormAblation isolates the Section IV-A.1 mechanism behind local
// shuffling's accuracy loss by sweeping the normalization scheme in the
// class-local stress setting (full partition locality, 16 workers):
//
//   - batch norm (the paper's architectures)     → large LS-vs-GS gap
//   - batch norm + epoch-level stats sync        → gap barely changes
//     (eval-time running statistics are NOT the dominant term)
//   - batch norm + full SyncBatchNorm            → gap closes
//     (train-time batch statistics ARE the mechanism)
//   - group norm (the paper's suggested remedy)  → gap closes
//   - no normalization                           → small residual gap
//
// This goes beyond the paper's qualitative discussion: it executes the
// hypothesis and decomposes the mechanism.
func NormAblation(opts Options) (*Result, error) {
	ds, err := data.Generate(data.SyntheticSpec{
		Name: "norm-ablation", NumSamples: 1024, NumVal: 512, Classes: 16,
		FeatureDim: 16, ClassSep: 4, NoiseStd: 1.2, Bytes: 100, Seed: 3,
	})
	if err != nil {
		return nil, err
	}
	epochs := 14
	if opts.Short {
		epochs = 8
	}
	base := nn.ModelSpec{Name: "mech", Hidden: []int{32}, BatchNorm: true}.
		WithData(ds.FeatureDim, ds.Classes)

	type variant struct {
		name   string
		model  nn.ModelSpec
		mutate func(*train.Config)
	}
	variants := []variant{
		{"batch-norm", base, nil},
		{"batch-norm+stats-sync", base, func(c *train.Config) { c.SyncBatchNormStats = true }},
		{"batch-norm+full-sync", base, func(c *train.Config) { c.FullSyncBatchNorm = true }},
		{"group-norm", base.WithNorm(nn.NormGroup), nil},
		{"no-norm", base.WithNorm(nn.NormNone), nil},
	}

	tb := metrics.NewTable(fmt.Sprintf("Normalization ablation: LS-vs-GS gap under class-local shards (%d epochs, M=16, locality=1)", epochs))
	tb.Header("normalization", "global acc", "local acc", "gap")
	gaps := map[string]float64{}
	for _, v := range variants {
		acc := map[string]float64{}
		for _, strat := range []shuffle.Strategy{shuffle.GlobalShuffling(), shuffle.LocalShuffling()} {
			cfg := train.Config{
				Workers: 16, Strategy: strat, Dataset: ds, Model: v.model,
				Epochs: epochs, BatchSize: 8, BaseLR: 0.1, Momentum: 0.9,
				WeightDecay: 1e-4, Seed: opts.seed(), PartitionLocality: 1.0,
			}
			if v.mutate != nil {
				v.mutate(&cfg)
			}
			res, err := train.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("norm-ablation %s %s: %w", v.name, strat, err)
			}
			acc[strat.String()] = res.FinalValAcc
		}
		gap := acc["global"] - acc["local"]
		gaps[v.name] = gap
		tb.Row(v.name,
			fmt.Sprintf("%.4f", acc["global"]),
			fmt.Sprintf("%.4f", acc["local"]),
			fmt.Sprintf("%+.4f", gap))
	}
	return &Result{
		ID:     "norm-ablation",
		Title:  "Mechanism: which normalization statistics cause the LS gap",
		Tables: []*metrics.Table{tb},
		Notes: []string{
			"Section IV-A.1 attributes the LS degradation to batch normalization; this ablation confirms it and localizes the damage to the TRAIN-time batch statistics: full SyncBatchNorm and GroupNorm close the gap, while synchronizing only the running (eval) statistics does not.",
		},
	}, nil
}
