package experiments

import (
	"fmt"

	"plshuffle/internal/data"
	"plshuffle/internal/metrics"
	"plshuffle/internal/nn"
	"plshuffle/internal/shuffle"
	"plshuffle/internal/train"
)

// AutoQTable regenerates the closed-loop controller headline (DESIGN.md
// §16): global shuffling, hand-tuned fixed-Q partial shuffling, and the
// self-tuning auto-Q controller on the same proxy, comparing final accuracy
// against per-epoch data movement. GS moves the whole epoch through the PFS
// (its "wire" is PFSReadBytes); PLS moves only the Q-fraction exchange
// (ExchangeBytes). The controller should land at GS-parity accuracy with a
// fraction of GS's bytes — and with no hand-picked Q: the trajectory the
// table prints is decided online, identically on every rank.
func AutoQTable(opts Options) (*Result, error) {
	const datasetKey = "imagenet-50"
	ds, err := data.LoadProxy(datasetKey)
	if err != nil {
		return nil, err
	}
	modelSpec, err := nn.ProxySpec("resnet50")
	if err != nil {
		return nil, err
	}
	modelSpec = modelSpec.WithData(ds.FeatureDim, ds.Classes)
	const workers = 4
	epochs := 12
	if opts.Short {
		epochs = 6
	}

	base := func(strat shuffle.Strategy) train.Config {
		cfg := train.Config{
			Workers:           workers,
			Strategy:          strat,
			Dataset:           ds,
			Model:             modelSpec,
			Epochs:            epochs,
			BatchSize:         16,
			BaseLR:            0.05,
			Momentum:          0.9,
			WeightDecay:       1e-4,
			Seed:              opts.seed(),
			PartitionLocality: 0.3,
		}
		opts.applyWire(&cfg)
		return cfg
	}

	type outcome struct {
		label      string
		res        *train.Result
		moved      int64 // per-run data movement: PFS reads for GS, exchange for PLS
		trajectory string
	}
	var runs []outcome

	gs, err := train.Run(base(shuffle.GlobalShuffling()))
	if err != nil {
		return nil, err
	}
	var gsBytes int64
	for _, e := range gs.Epochs {
		gsBytes += e.PFSReadBytes
	}
	runs = append(runs, outcome{label: "global", res: gs, moved: gsBytes})

	fixed, err := train.Run(base(shuffle.Partial(0.2)))
	if err != nil {
		return nil, err
	}
	var fxBytes int64
	for _, e := range fixed.Epochs {
		fxBytes += e.ExchangeBytes
	}
	runs = append(runs, outcome{label: "partial-0.2 (fixed)", res: fixed, moved: fxBytes})

	autoCfg := base(shuffle.Partial(0.2))
	autoCfg.AutoQ = true
	autoCfg.AutoQMin = 0.05
	autoCfg.AutoQMax = 0.5
	autoRes, err := train.Run(autoCfg)
	if err != nil {
		return nil, err
	}
	var aBytes int64
	traj := ""
	for _, e := range autoRes.Epochs {
		aBytes += e.ExchangeBytes
		traj += fmt.Sprintf(" %g(%s)", e.ControllerQ, e.ControllerReason)
	}
	runs = append(runs, outcome{label: "partial auto-Q", res: autoRes, moved: aBytes, trajectory: traj})

	tb := metrics.NewTable(fmt.Sprintf("Self-tuning Q: accuracy vs data movement (%s, M=%d, %d epochs)", datasetKey, workers, epochs))
	tb.Header("strategy", "final acc", "best acc", "data moved", "vs GS")
	for _, r := range runs {
		ratio := "1.00x"
		if gsBytes > 0 {
			ratio = fmt.Sprintf("%.2fx", float64(r.moved)/float64(gsBytes))
		}
		tb.Row(r.label,
			fmt.Sprintf("%.4f", r.res.FinalValAcc),
			fmt.Sprintf("%.4f", r.res.BestValAcc),
			metrics.FormatBytes(r.moved), ratio)
	}
	notes := []string{
		"GS's data movement is its per-epoch PFS re-read; PLS moves only the Q-fraction exchange (simulated Sample.Bytes on both sides).",
		"auto-Q trajectory:" + runs[2].trajectory + " — decided online from gathered label-skew and modeled comm/compute stats, no hand-tuned Q.",
	}
	return &Result{
		ID:     "autoq",
		Title:  "Closed-loop shuffle controller vs GS and fixed Q",
		Tables: []*metrics.Table{tb},
		Notes:  notes,
	}, nil
}
