package experiments

import (
	"strings"
	"testing"
)

func TestRegistryAndLookup(t *testing.T) {
	reg := Registry()
	if len(reg) != 20 {
		t.Fatalf("registry has %d experiments, want 20 (every table and figure + extensions)", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if e.ID == "" || e.Run == nil {
			t.Fatalf("incomplete registry entry %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment ID %q", e.ID)
		}
		seen[e.ID] = true
		if _, err := Lookup(e.ID); err != nil {
			t.Fatalf("Lookup(%q): %v", e.ID, err)
		}
	}
	for _, want := range []string{"fig1", "table1", "fig5a", "fig5b", "fig5c", "fig5d", "fig5e", "fig5f",
		"fig6", "fig7a", "fig7b", "fig8", "fig9", "fig10", "shuffling-error", "norm-ablation", "hier-exchange", "eventsim", "importance", "autoq"} {
		if !seen[want] {
			t.Errorf("registry missing %q", want)
		}
	}
	if _, err := Lookup("fig99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFig1Content(t *testing.T) {
	res, err := Fig1(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 2 {
		t.Fatalf("fig1 tables = %d", len(res.Tables))
	}
	if res.Tables[0].NumRows() != 15 {
		t.Fatalf("fig1 system rows = %d, want 15", res.Tables[0].NumRows())
	}
	var b strings.Builder
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fugaku", "ABCI", "DeepCAM", "ImageNet-1K"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("fig1 output missing %q", want)
		}
	}
}

func TestTable1Content(t *testing.T) {
	res, err := Table1(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tables[0].NumRows() != 6 {
		t.Fatalf("table1 rows = %d, want 6 datasets", res.Tables[0].NumRows())
	}
}

func TestFig9Shape(t *testing.T) {
	res, err := Fig9(Options{})
	if err != nil {
		t.Fatal(err)
	}
	fig := res.Figures[0]
	gs, ls, pls := fig.Lookup("global"), fig.Lookup("local"), fig.Lookup("partial-0.1")
	if gs == nil || ls == nil || pls == nil {
		t.Fatal("fig9 missing series")
	}
	if len(gs.X) != 8 {
		t.Fatalf("fig9 has %d scale points, want 8", len(gs.X))
	}
	for i := range gs.Y {
		if gs.Y[i] <= ls.Y[i] {
			t.Errorf("global should be slower than local at %v workers", gs.X[i])
		}
		if pls.Y[i] < ls.Y[i] {
			t.Errorf("partial-0.1 should not beat local at %v workers", pls.X[i])
		}
	}
}

func TestFig10Shape(t *testing.T) {
	res, err := Fig10(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 2 {
		t.Fatalf("fig10 tables = %d", len(res.Tables))
	}
}

func TestFig7bShape(t *testing.T) {
	res, err := Fig7b(Options{})
	if err != nil {
		t.Fatal(err)
	}
	fig := res.Figures[0]
	bound := fig.Lookup("PFS lower bound (global)")
	if bound == nil || bound.Last() <= 0 {
		t.Fatal("missing PFS lower bound line")
	}
	for _, name := range []string{"local", "partial-0.25", "partial-0.5", "partial-0.9"} {
		s := fig.Lookup(name)
		if s == nil {
			t.Fatalf("missing series %s", name)
		}
		if s.Last() >= bound.Last() {
			t.Errorf("%s should sit below the PFS bound", name)
		}
	}
}

func TestShufflingErrorTable(t *testing.T) {
	res, err := ShufflingErrorTable(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tables[0].NumRows() != 15 {
		t.Fatalf("rows = %d", res.Tables[0].NumRows())
	}
}

// TestFig5eShortShape runs the cheapest gap-producing accuracy experiment
// end-to-end in short mode and checks the paper's shape: LS collapses at
// the large scale and recovery grows with Q. The other accuracy figures
// share the same runner and are exercised (with their own assertions) by
// the root-level benchmarks.
func TestFig5eShortShape(t *testing.T) {
	if testing.Short() {
		t.Skip("accuracy experiment: skipped with -short")
	}
	res, err := Fig5e(Options{Short: true})
	if err != nil {
		t.Fatal(err)
	}
	big := res.Figures[1]
	gs := big.Lookup("global").Last()
	ls := big.Lookup("local").Last()
	p7 := big.Lookup("partial-0.7").Last()
	if gs-ls < 0.05 {
		t.Errorf("expected an LS gap at the large scale: gs=%.3f ls=%.3f", gs, ls)
	}
	if p7-ls < (gs-ls)/2 {
		t.Errorf("partial-0.7 should close at least half the gap: gs=%.3f ls=%.3f p7=%.3f", gs, ls, p7)
	}
	if res.Tables[0].NumRows() != 8 {
		t.Errorf("summary rows = %d", res.Tables[0].NumRows())
	}
}

func TestOptionsSeedDefault(t *testing.T) {
	if (Options{}).seed() != 2022 {
		t.Fatal("default seed changed; recorded experiment outputs depend on it")
	}
	if (Options{Seed: 7}).seed() != 7 {
		t.Fatal("seed override ignored")
	}
}
