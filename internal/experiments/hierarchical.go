package experiments

import (
	"fmt"

	"plshuffle/internal/cluster"
	"plshuffle/internal/metrics"
	"plshuffle/internal/perfmodel"
	"plshuffle/internal/shuffle"
)

// HierarchicalExchangeTable evaluates the paper's Section V-F proposal —
// "an alternative solution is to use a hierarchical global exchange
// scheme that maps to the hierarchy of connection between computing
// nodes" — with the performance model: the two-level exchange aligns each
// slot's traffic into group-pairs (one group per node), so the congestion
// and synchronization terms scale with the node count rather than the
// worker count, recovering most of partial-0.1's degradation at 1,024 and
// 2,048 workers (Figure 9's pain point).
func HierarchicalExchangeTable(opts Options) (*Result, error) {
	flat, err := perfWorkload("imagenet-1k", "resnet50", 32, false)
	if err != nil {
		return nil, err
	}
	hier := flat
	hier.ExchangeGroupSize = 4 // ABCI: 4 workers (GPUs) per node
	mc := cluster.ABCI()

	tb := metrics.NewTable("Hierarchical vs flat exchange: partial-0.1 epoch time on ABCI (ResNet50/ImageNet-1K)")
	tb.Header("workers", "local", "partial-0.1 flat", "partial-0.1 hierarchical", "flat/local", "hier/local")
	for _, m := range []int{128, 256, 512, 1024, 2048} {
		ls, err := perfmodel.EpochTime(mc, flat, m, shuffle.LocalShuffling())
		if err != nil {
			return nil, err
		}
		pf, err := perfmodel.EpochTime(mc, flat, m, shuffle.Partial(0.1))
		if err != nil {
			return nil, err
		}
		ph, err := perfmodel.EpochTime(mc, hier, m, shuffle.Partial(0.1))
		if err != nil {
			return nil, err
		}
		tb.Row(fmt.Sprintf("%d", m),
			metrics.FormatSeconds(ls.Total()),
			metrics.FormatSeconds(pf.Total()),
			metrics.FormatSeconds(ph.Total()),
			fmt.Sprintf("%.2fx", pf.Total()/ls.Total()),
			fmt.Sprintf("%.2fx", ph.Total()/ls.Total()))
	}
	return &Result{
		ID:     "hier-exchange",
		Title:  "Section V-F extension: hierarchical two-level exchange",
		Tables: []*metrics.Table{tb},
		Notes: []string{
			"The hierarchical plan keeps the balanced single-source/single-destination property (see shuffle.PlanExchangeHierarchical and its GroupAlignment invariant) while collapsing per-slot inter-node traffic to M/groupSize aligned group-pairs.",
		},
	}, nil
}
