// Package experiments defines one runnable configuration per table and
// figure of the paper's evaluation (Section V), shared by the experiments
// CLI, the examples, and the root-level benchmark harness. Accuracy
// figures run real distributed SGD on the scaled-down proxies;
// performance figures evaluate the calibrated analytic model at the
// paper's scales (see DESIGN.md §2 and §4 for the substitution rationale
// and the per-experiment index).
package experiments

import (
	"fmt"
	"io"

	"plshuffle/internal/analysis"
	"plshuffle/internal/cluster"
	"plshuffle/internal/data"
	"plshuffle/internal/metrics"
	"plshuffle/internal/perfmodel"
	"plshuffle/internal/shuffle"
	"plshuffle/internal/train"
)

// Options tunes an experiment run.
type Options struct {
	// Short runs a reduced number of epochs for quick smoke runs.
	Short bool
	// Seed overrides the default experiment seed when non-zero.
	Seed uint64
	// WireDedup and SampleEncoding thread the wire-lean exchange options
	// (DESIGN.md §13) into every training run an experiment performs. With
	// dedup or the fp16exact encoding the curves must be IDENTICAL to a
	// plain run — regenerating a figure with these on is a cheap end-to-end
	// equivalence check on the whole wire-lean stack.
	WireDedup      bool
	SampleEncoding string
}

// applyWire copies the wire-lean exchange options into a training config.
func (o Options) applyWire(cfg *train.Config) {
	cfg.WireDedup = o.WireDedup
	cfg.SampleEncoding = o.SampleEncoding
}

func (o Options) seed() uint64 {
	if o.Seed != 0 {
		return o.Seed
	}
	return 2022 // IPDPS 2022
}

// Result is one experiment's regenerated output.
type Result struct {
	ID      string
	Title   string
	Figures []*metrics.Figure
	Tables  []*metrics.Table
	Notes   []string
}

// Render writes every figure and table of the result.
func (r *Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	for _, t := range r.Tables {
		if err := t.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	for _, f := range r.Figures {
		if err := f.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintln(w, "note:", n); err != nil {
			return err
		}
	}
	return nil
}

// Runner regenerates one experiment.
type Runner func(Options) (*Result, error)

// Registry maps experiment IDs to runners, in paper order.
func Registry() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"fig1", Fig1},
		{"table1", Table1},
		{"fig5a", Fig5a},
		{"fig5b", Fig5b},
		{"fig5c", Fig5c},
		{"fig5d", Fig5d},
		{"fig5e", Fig5e},
		{"fig5f", Fig5f},
		{"fig6", Fig6},
		{"fig7a", Fig7a},
		{"fig7b", Fig7b},
		{"fig8", Fig8},
		{"fig9", Fig9},
		{"fig10", Fig10},
		{"shuffling-error", ShufflingErrorTable},
		{"norm-ablation", NormAblation},
		{"hier-exchange", HierarchicalExchangeTable},
		{"eventsim", EventSimVsModel},
		{"importance", ImportanceSamplingTable},
		{"autoq", AutoQTable},
	}
}

// Lookup finds a runner by ID.
func Lookup(id string) (Runner, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", id)
}

// Fig1 regenerates Figure 1: dedicated node-local storage of fifteen
// TOP500 systems against deep learning dataset sizes.
func Fig1(opts Options) (*Result, error) {
	systems := cluster.Top500Systems()
	datasets := cluster.Figure1Datasets()
	tb := metrics.NewTable("Figure 1: per-node dedicated storage vs dataset sizes (TOP500, Nov 2020)")
	tb.Header("system", "node-local", "network flash", "DL-designed", "fits ImageNet-1K", "fits DeepCAM")
	var imagenet, deepcam int64
	for _, d := range datasets {
		switch d.Name {
		case "ImageNet-1K":
			imagenet = d.Bytes
		case "DeepCAM":
			deepcam = d.Bytes
		}
	}
	for _, s := range systems {
		star := ""
		if s.DLDesigned {
			star = "*"
		}
		tb.Row(s.Name,
			metrics.FormatBytes(s.NodeLocalBytes),
			metrics.FormatBytes(s.NetworkFlashBytes),
			star,
			fmt.Sprintf("%v", s.Fits(imagenet)),
			fmt.Sprintf("%v", s.Fits(deepcam)))
	}
	dt := metrics.NewTable("Figure 1 dataset lines")
	dt.Header("dataset", "size", "systems it fits on (of 15)")
	for _, d := range datasets {
		fits := 0
		for _, s := range systems {
			if s.Fits(d.Bytes) {
				fits++
			}
		}
		dt.Row(d.Name, metrics.FormatBytes(d.Bytes), fmt.Sprintf("%d", fits))
	}
	return &Result{
		ID:     "fig1",
		Title:  "Node-local storage vs dataset sizes",
		Tables: []*metrics.Table{tb, dt},
		Notes: []string{
			"Several datasets exceed every system's per-node storage: replicating the dataset to node-local SSDs is increasingly infeasible (Section II).",
		},
	}, nil
}

// Table1 regenerates Table I: datasets and models used in the experiments,
// including this reproduction's proxy configuration.
func Table1(opts Options) (*Result, error) {
	tb := metrics.NewTable("Table I: datasets and models")
	tb.Header("model", "dataset", "#samples", "size", "proxy N/classes/dim")
	for _, key := range data.DatasetKeys() {
		info, err := data.Info(key)
		if err != nil {
			return nil, err
		}
		models := ""
		for i, m := range info.Models {
			if i > 0 {
				models += ", "
			}
			models += m
		}
		if info.Pretrained {
			models += " (pretrained)"
		}
		tb.Row(models, info.Name,
			fmt.Sprintf("%d", info.RealN),
			metrics.FormatBytes(info.RealBytes),
			fmt.Sprintf("%d/%d/%d", info.Proxy.NumSamples, info.Proxy.Classes, info.Proxy.TotalDim()))
	}
	return &Result{ID: "table1", Title: "Datasets and models", Tables: []*metrics.Table{tb}}, nil
}

// perfWorkload builds the paper-scale workload for a registry dataset and
// model profile.
func perfWorkload(datasetKey, model string, batch int, sequential bool) (perfmodel.Workload, error) {
	info, err := data.Info(datasetKey)
	if err != nil {
		return perfmodel.Workload{}, err
	}
	prof, err := perfmodel.Profile(model)
	if err != nil {
		return perfmodel.Workload{}, err
	}
	return perfmodel.Workload{
		N:              int(info.RealN),
		BytesPerSample: info.BytesPerSample(),
		LocalBatch:     batch,
		Model:          prof,
		Sequential:     sequential,
	}, nil
}

// Fig9 regenerates Figure 9: epoch time of ResNet50/ImageNet-1K on ABCI as
// the worker count grows, for global, local, and partial-0.1 shuffling.
func Fig9(opts Options) (*Result, error) {
	w, err := perfWorkload("imagenet-1k", "resnet50", 32, false)
	if err != nil {
		return nil, err
	}
	mc := cluster.ABCI()
	fig := metrics.NewFigure("Figure 9: ResNet50/ImageNet-1K epoch time on ABCI", "workers", "seconds/epoch")
	strategies := []shuffle.Strategy{shuffle.GlobalShuffling(), shuffle.LocalShuffling(), shuffle.Partial(0.1)}
	series := make(map[string]*metrics.Series)
	for _, s := range strategies {
		series[s.String()] = fig.AddSeries(s.String())
	}
	for _, m := range []int{16, 32, 64, 128, 256, 512, 1024, 2048} {
		for _, s := range strategies {
			b, err := perfmodel.EpochTime(mc, w, m, s)
			if err != nil {
				return nil, err
			}
			series[s.String()].Add(float64(m), b.Total())
		}
	}
	gs128 := series["global"].Y[3]
	ls128 := series["local"].Y[3]
	return &Result{
		ID:      "fig9",
		Title:   "Epoch time vs workers",
		Figures: []*metrics.Figure{fig},
		Notes: []string{
			fmt.Sprintf("global / local at 128 workers = %.1fx (paper: ~5x)", gs128/ls128),
			"partial-0.1 tracks local up to 512 workers, then degrades as only ~40/20 iterations remain to overlap the exchange (Section V-F).",
		},
	}, nil
}

// Fig10 regenerates Figure 10: the epoch-time breakdown (IO, EXCHANGE,
// FW+BW, GE+WU) at 512 ABCI workers as the exchange rate grows, for
// ResNet50 and DenseNet161 on ImageNet-1K.
func Fig10(opts Options) (*Result, error) {
	mc := cluster.ABCI()
	res := &Result{ID: "fig10", Title: "Breakdown of epoch time vs exchange rate (512 workers)"}
	for _, model := range []string{"resnet50", "densenet161"} {
		w, err := perfWorkload("imagenet-1k", model, 32, false)
		if err != nil {
			return nil, err
		}
		tb := metrics.NewTable(fmt.Sprintf("Figure 10 (%s): seconds per phase at 512 workers", model))
		tb.Header("strategy", "IO", "EXCHANGE", "FW+BW", "GE+WU", "total", "IO slowest")
		row := func(label string, s shuffle.Strategy) error {
			b, err := perfmodel.EpochTime(mc, w, 512, s)
			if err != nil {
				return err
			}
			tb.Row(label,
				metrics.FormatSeconds(b.IO), metrics.FormatSeconds(b.Exchange),
				metrics.FormatSeconds(b.FWBW), metrics.FormatSeconds(b.GEWU),
				metrics.FormatSeconds(b.Total()), metrics.FormatSeconds(b.IOSlowest))
			return nil
		}
		if err := row("local", shuffle.LocalShuffling()); err != nil {
			return nil, err
		}
		for _, q := range []float64{0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0} {
			if err := row(fmt.Sprintf("partial-%g", q), shuffle.Partial(q)); err != nil {
				return nil, err
			}
		}
		if err := row("global", shuffle.GlobalShuffling()); err != nil {
			return nil, err
		}
		res.Tables = append(res.Tables, tb)
	}
	res.Notes = append(res.Notes,
		"FW+BW is constant across strategies; EXCHANGE grows with Q; GS pays PFS I/O plus straggler waiting in the gradient exchange (paper: 19.6 s avg, 11.9-142 s spread, ~70 s GE at 512 workers for DenseNet).")
	return res, nil
}

// Fig7b regenerates Figure 7(b): DeepCAM epoch time for partial shuffling
// against the PFS-based global shuffling lower bound.
func Fig7b(opts Options) (*Result, error) {
	w, err := perfWorkload("deepcam", "deepcam", 8, true)
	if err != nil {
		return nil, err
	}
	mc := cluster.ABCI()
	info, err := data.Info("deepcam")
	if err != nil {
		return nil, err
	}
	bound := perfmodel.PFSLowerBound(mc, info.RealBytes)
	fig := metrics.NewFigure("Figure 7(b): DeepCAM epoch time on ABCI", "workers", "seconds/epoch")
	ls := fig.AddSeries("local")
	qs := map[float64]*metrics.Series{}
	for _, q := range []float64{0.25, 0.5, 0.9} {
		qs[q] = fig.AddSeries(fmt.Sprintf("partial-%g", q))
	}
	pfsLine := fig.AddSeries("PFS lower bound (global)")
	for _, m := range []int{1024, 2048} {
		b, err := perfmodel.EpochTime(mc, w, m, shuffle.LocalShuffling())
		if err != nil {
			return nil, err
		}
		ls.Add(float64(m), b.Total())
		for q, s := range qs {
			b, err := perfmodel.EpochTime(mc, w, m, shuffle.Partial(q))
			if err != nil {
				return nil, err
			}
			s.Add(float64(m), b.Total())
		}
		pfsLine.Add(float64(m), bound)
	}
	return &Result{
		ID:      "fig7b",
		Title:   "DeepCAM performance",
		Figures: []*metrics.Figure{fig},
		Notes: []string{
			fmt.Sprintf("PFS lower bound = %.0f s (8.2 TiB / theoretical peak bandwidth); the exchange incurs noticeable overhead but stays multiple times below the bound.", bound),
		},
	}, nil
}

// ShufflingErrorTable regenerates the Section IV-B analysis: ε(A,h,N) and
// the domination condition for ImageNet-scale parameters, with both the
// verbatim Equation 9 count and the corrected count (see
// internal/analysis for the documented discrepancy).
func ShufflingErrorTable(opts Options) (*Result, error) {
	const n = 1_200_000
	tb := metrics.NewTable("Section IV-B: shuffling error for ImageNet (|N|=1.2e6)")
	tb.Header("workers", "Q", "eps (corrected)", "eps (Eq.9, clamped)", "threshold sqrt(bM/N)", "dominates")
	for _, m := range []int{4, 128, 512, 2048, 100_000} {
		b := 100_000 / m
		if b == 0 {
			b = 1
		}
		for _, q := range []float64{0, 0.1, 0.5} {
			eps, err := analysis.ShufflingError(n, m, q)
			if err != nil {
				return nil, err
			}
			epsPaper, err := analysis.ShufflingErrorPaper(n, m, q)
			if err != nil {
				return nil, err
			}
			thr := analysis.DominationThreshold(n, m, b)
			dom, err := analysis.Dominates(n, m, b, q)
			if err != nil {
				return nil, err
			}
			tb.Row(fmt.Sprintf("%d", m), fmt.Sprintf("%g", q),
				fmt.Sprintf("%.6f", eps), fmt.Sprintf("%.6f", epsPaper),
				fmt.Sprintf("%.4f", thr), fmt.Sprintf("%v", dom))
		}
	}
	return &Result{
		ID:     "shuffling-error",
		Title:  "Shuffling error and convergence-bound domination",
		Tables: []*metrics.Table{tb},
		Notes: []string{
			"For practical sizes the shuffling error approaches 1 and dominates the Equation 6 bound, as the paper concludes — even though convergence is unaffected in practice (Section V).",
			"Equation 9 overcounts at small M (sigma > N!); the corrected count is used for the headline numbers (see internal/analysis).",
		},
	}, nil
}
