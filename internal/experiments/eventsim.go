package experiments

import (
	"fmt"

	"plshuffle/internal/cluster"
	"plshuffle/internal/eventsim"
	"plshuffle/internal/metrics"
	"plshuffle/internal/perfmodel"
	"plshuffle/internal/shuffle"
)

// EventSimVsModel cross-validates the two performance substrates on the
// Figure 9 workload: the closed-form analytic model (whose congestion and
// straggler coefficients are calibrated to the paper's measurements) and
// the discrete-event simulator (where stragglers and congestion emerge
// from shared-resource contention, heavy-tailed request jitter, and
// fat-tree tapering). Agreement of the two independent mechanisms on the
// paper's shapes strengthens the reproduction of Figures 9 and 10.
func EventSimVsModel(opts Options) (*Result, error) {
	w, err := perfWorkload("imagenet-1k", "resnet50", 32, false)
	if err != nil {
		return nil, err
	}
	mc := cluster.ABCI()
	tb := metrics.NewTable("Event simulation vs analytic model: ResNet50/ImageNet-1K epoch seconds on ABCI")
	tb.Header("workers", "strategy", "sim total", "model total", "sim/model", "sim IO avg→max", "sim GE+WU")
	workers := []int{64, 128, 512}
	if opts.Short {
		workers = []int{64, 128}
	}
	strategies := []shuffle.Strategy{shuffle.GlobalShuffling(), shuffle.LocalShuffling(), shuffle.Partial(0.1)}
	var gsSim, lsSim float64
	for _, m := range workers {
		for _, s := range strategies {
			sim, err := eventsim.SimulateEpoch(eventsim.Config{
				Machine: mc, Workload: w, Workers: m, Strategy: s, Seed: opts.seed(),
			})
			if err != nil {
				return nil, err
			}
			model, err := perfmodel.EpochTime(mc, w, m, s)
			if err != nil {
				return nil, err
			}
			if m == 128 {
				switch s.Kind {
				case shuffle.Global:
					gsSim = sim.EpochTime
				case shuffle.Local:
					lsSim = sim.EpochTime
				}
			}
			tb.Row(fmt.Sprintf("%d", m), s.String(),
				metrics.FormatSeconds(sim.EpochTime),
				metrics.FormatSeconds(model.Total()),
				fmt.Sprintf("%.2f", sim.EpochTime/model.Total()),
				fmt.Sprintf("%s→%s", metrics.FormatSeconds(sim.IOMean), metrics.FormatSeconds(sim.IOSlowest)),
				metrics.FormatSeconds(sim.GEWU))
		}
	}
	return &Result{
		ID:     "eventsim",
		Title:  "Discrete-event simulation cross-check of the performance model",
		Tables: []*metrics.Table{tb},
		Notes: []string{
			fmt.Sprintf("simulated GS/LS ratio at 128 workers = %.1fx (paper: ~5x); stragglers and congestion are emergent here, not fitted.", gsSim/lsSim),
		},
	}, nil
}
