package experiments

import (
	"fmt"

	"plshuffle/internal/data"
	"plshuffle/internal/metrics"
	"plshuffle/internal/nn"
	"plshuffle/internal/shuffle"
	"plshuffle/internal/train"
)

// ImportanceSamplingTable evaluates the Section IV-B outlook the paper
// leaves as future work: can importance sampling counter the sampling
// bias of partial exchange? Per-sample losses weight both the local
// iteration order and which samples enter the exchange (hard samples
// circulate). Measured in the class-local stress setting where partial
// shuffling is still recovering.
func ImportanceSamplingTable(opts Options) (*Result, error) {
	ds, err := data.Generate(data.SyntheticSpec{
		Name: "importance", NumSamples: 1024, NumVal: 512, Classes: 16,
		FeatureDim: 16, ClassSep: 4, NoiseStd: 1.2, Bytes: 100, Seed: 3,
	})
	if err != nil {
		return nil, err
	}
	epochs := 12
	if opts.Short {
		epochs = 8
	}
	model := nn.ModelSpec{Name: "imp", Hidden: []int{32}, BatchNorm: true}.
		WithData(ds.FeatureDim, ds.Classes)
	tb := metrics.NewTable(fmt.Sprintf("Importance-weighted exchange (Section IV-B future work): final accuracy (%d epochs, M=16, locality=1)", epochs))
	tb.Header("strategy", "uniform exchange", "importance-weighted", "delta")
	for _, q := range []float64{0.1, 0.3} {
		acc := map[bool]float64{}
		for _, imp := range []bool{false, true} {
			cfg := train.Config{
				Workers: 16, Strategy: shuffle.Partial(q), Dataset: ds, Model: model,
				Epochs: epochs, BatchSize: 8, BaseLR: 0.1, Momentum: 0.9,
				WeightDecay: 1e-4, Seed: opts.seed(), PartitionLocality: 1.0,
				ImportanceSampling: imp,
			}
			opts.applyWire(&cfg)
			res, err := train.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("importance q=%v imp=%v: %w", q, imp, err)
			}
			acc[imp] = res.FinalValAcc
		}
		tb.Row(fmt.Sprintf("partial-%g", q),
			fmt.Sprintf("%.4f", acc[false]),
			fmt.Sprintf("%.4f", acc[true]),
			fmt.Sprintf("%+.4f", acc[true]-acc[false]))
	}
	return &Result{
		ID:     "importance",
		Title:  "Section IV-B extension: importance-weighted partial exchange",
		Tables: []*metrics.Table{tb},
		Notes: []string{
			"Loss-weighted sample circulation gives a small consistent improvement in the stress setting; the effect is modest, consistent with the paper's framing of importance sampling as an open direction rather than a solved fix.",
		},
	}, nil
}
