package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

// quickCfg fixes the draw count so the property suite stays fast under
// -race while still sweeping thousands of random (n, m, q, b) shapes.
var quickCfg = &quick.Config{MaxCount: 2000}

// drawWorld maps arbitrary random words onto a valid world shape:
// n in [2, ~130k], m in [2, 65], b in [1, 256].
func drawWorld(a, b, c uint64) (n, m, batch int) {
	return int(2 + a%(1<<17)), int(2 + b%64), int(1 + c%256)
}

func drawQ(u uint64) float64 {
	return float64(u%100001) / 100000
}

// TestShufflingErrorMonotoneInQ: ε(n,m,q) is monotonically non-increasing
// in q — more exchange can only reduce the shuffling error. This is the
// property the controller's raise region relies on.
func TestShufflingErrorMonotoneInQ(t *testing.T) {
	prop := func(a, b uint64, u1, u2 uint64) bool {
		n, m, _ := drawWorld(a, b, 0)
		q1, q2 := drawQ(u1), drawQ(u2)
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		lo, err1 := ShufflingError(n, m, q1)
		hi, err2 := ShufflingError(n, m, q2)
		if err1 != nil || err2 != nil {
			t.Logf("n=%d m=%d q1=%v q2=%v: %v %v", n, m, q1, q2, err1, err2)
			return false
		}
		if hi > lo {
			t.Logf("n=%d m=%d: eps(%v)=%v < eps(%v)=%v", n, m, q1, lo, q2, hi)
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestShufflingErrorStepContinuity: ε depends on q only through the slot
// count floor(q·N/M), so it is constant — bitwise — between consecutive
// partition boundaries k/(N/M), and therefore continuous AT each boundary
// from the right. Two draws landing in the same partition cell must produce
// the identical float64.
func TestShufflingErrorStepContinuity(t *testing.T) {
	prop := func(a, b uint64, u1, u2 uint64) bool {
		n, m, _ := drawWorld(a, b, 0)
		q1, q2 := drawQ(u1), drawQ(u2)
		perWorker := float64(n) / float64(m)
		if math.Floor(q1*perWorker) != math.Floor(q2*perWorker) {
			return true // different cells — nothing to compare
		}
		e1, err1 := ShufflingError(n, m, q1)
		e2, err2 := ShufflingError(n, m, q2)
		if err1 != nil || err2 != nil {
			return false
		}
		if math.Float64bits(e1) != math.Float64bits(e2) {
			t.Logf("n=%d m=%d same cell k=%v: eps(%v)=%v != eps(%v)=%v",
				n, m, math.Floor(q1*perWorker), q1, e1, q2, e2)
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestShufflingErrorBoundary pins the exact partition boundaries: stepping
// q from just below k/(N/M) to exactly the boundary may only keep ε equal
// or drop it (the step function is right-continuous and non-increasing),
// never raise it.
func TestShufflingErrorBoundary(t *testing.T) {
	prop := func(a, b, kk uint64) bool {
		n, m, _ := drawWorld(a, b, 0)
		perWorker := float64(n) / float64(m)
		k := 1 + float64(kk%uint64(math.Max(1, perWorker)))
		boundary := k / perWorker
		if boundary > 1 {
			return true
		}
		below := math.Nextafter(boundary, 0)
		eBelow, err1 := ShufflingError(n, m, below)
		eAt, err2 := ShufflingError(n, m, boundary)
		if err1 != nil || err2 != nil {
			return false
		}
		return eAt <= eBelow
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestDecisionRegionsExhaustiveExclusive: the independently-stated region
// predicates cover every signal exactly once, and ClassifyQ agrees with
// them. This is the safety net under the controller protocol: every epoch
// produces exactly one decision, whatever the stats say.
func TestDecisionRegionsExhaustiveExclusive(t *testing.T) {
	pol := DefaultQPolicy()
	prop := func(a, b, c, uq, us, ur uint64) bool {
		n, m, batch := drawWorld(a, b, c)
		sig := QSignal{
			N: n, M: m, B: batch,
			Q:         drawQ(uq),
			Skew:      drawQ(us),
			CommRatio: 4 * drawQ(ur),
		}
		eps, err := ShufflingError(sig.N, sig.M, sig.Q)
		if err != nil {
			return false
		}
		safe := eps <= pol.Safety*DominationThreshold(sig.N, sig.M, sig.B)
		raiseP := !safe && sig.Skew > pol.SkewBound
		lowerP := !raiseP && sig.CommRatio > pol.LowerRatio
		holdP := !raiseP && !lowerP
		count := 0
		for _, p := range []bool{raiseP, lowerP, holdP} {
			if p {
				count++
			}
		}
		if count != 1 {
			t.Logf("%+v: %d regions claim the signal", sig, count)
			return false
		}
		region, err := ClassifyQ(sig, pol)
		if err != nil {
			return false
		}
		want := QHold
		switch {
		case raiseP:
			want = QRaise
		case lowerP:
			want = QLower
		}
		if region != want {
			t.Logf("%+v: ClassifyQ=%v, predicates say %v", sig, region, want)
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestDecideQStaysClamped: every decision stays inside
// [min(MinQ, q), max(MaxQ, q)] — a Q that starts outside the clamp range
// may drift back toward it but never further out — the reason is always one
// of the canonical labels, and the reason's direction matches the actual
// movement.
func TestDecideQStaysClamped(t *testing.T) {
	pol := DefaultQPolicy()
	canonical := make(map[string]bool)
	for _, r := range QReasons() {
		canonical[r] = true
	}
	prop := func(a, b, c, uq, us, ur uint64) bool {
		n, m, batch := drawWorld(a, b, c)
		sig := QSignal{
			N: n, M: m, B: batch,
			Q:         drawQ(uq),
			Skew:      drawQ(us),
			CommRatio: 4 * drawQ(ur),
		}
		next, reason, err := DecideQ(sig, pol)
		if err != nil {
			return false
		}
		if !canonical[reason] {
			t.Logf("%+v: non-canonical reason %q", sig, reason)
			return false
		}
		lo, hi := math.Min(pol.MinQ, sig.Q), math.Max(pol.MaxQ, sig.Q)
		if next < lo || next > hi {
			t.Logf("%+v: decision %v escaped [%v,%v]", sig, next, lo, hi)
			return false
		}
		switch reason {
		case ReasonRaiseSkew:
			return next > sig.Q
		case ReasonLowerHidden:
			return next < sig.Q
		default:
			return next == sig.Q
		}
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestReasonCodesRoundTrip pins the wire mapping of the canonical reasons.
func TestReasonCodesRoundTrip(t *testing.T) {
	for i, r := range QReasons() {
		if got := ReasonCode(r); got != uint8(i) {
			t.Errorf("ReasonCode(%q) = %d, want %d", r, got, i)
		}
		if got := ReasonFromCode(uint8(i)); got != r {
			t.Errorf("ReasonFromCode(%d) = %q, want %q", i, got, r)
		}
	}
	if got := ReasonFromCode(200); got != ReasonHold {
		t.Errorf("out-of-range code decodes as %q, want %q", got, ReasonHold)
	}
	if got := ReasonCode("no-such-reason"); got != 0 {
		t.Errorf("unknown reason encodes as %d, want 0", got)
	}
}
