// Package analysis implements the convergence-rate and shuffling-error
// machinery of Section IV-B. Building on Meng et al.'s analysis of
// distributed SGD with insufficient shuffling, the paper counts the number
// of permutations σ realizable by partial local shuffling with exchange
// fraction Q (Equations 8-9), expresses the shuffling error as
// ε(A,h,N) = 1 − σ/|N|! (Equations 10-11), and shows that for practical
// dataset sizes and worker counts ε approaches 1 and therefore dominates
// the convergence-rate upper bound (Equation 6) unless
// ε ≤ sqrt(b·|M|/|N|).
//
// All permutation counts are astronomically large, so everything is
// computed in log space with log-gamma.
package analysis

import (
	"fmt"
	"math"
)

// LogFactorial returns ln(n!) using the log-gamma function. It accepts
// non-negative n; LogFactorial(0) = 0.
func LogFactorial(n float64) float64 {
	if n < 0 {
		panic(fmt.Sprintf("analysis: LogFactorial(%v): negative argument", n))
	}
	lg, _ := math.Lgamma(n + 1)
	return lg
}

// logPerm returns ln(P(n, k)) = ln(n!/(n-k)!), the number of k-permutations
// of n items.
func logPerm(n, k float64) float64 {
	if k < 0 || k > n {
		panic(fmt.Sprintf("analysis: logPerm(%v, %v): k out of range", n, k))
	}
	return LogFactorial(n) - LogFactorial(n-k)
}

// LogSigmaPaper computes ln(σ) of Equation 9 verbatim: the paper's count
// of permutations realizable by one epoch of partial local shuffling with
// fraction q on n samples over m workers. The four factors are:
// permutations of a worker's local samples, permutations of candidate
// incoming samples from the other m−1 partitions, permutations of the
// outgoing exchange picks, and permutations of the remaining samples in
// the other partitions.
//
// REPRODUCTION NOTE: Equation 9 overcounts. At small worker counts it
// exceeds |N|! — e.g. for |N| = 1.2e6, |M| = 4, Q = 0.1 the formula gives
// ln σ ≈ 1.57e7 > ln |N|! ≈ 1.56e7, which would make ε negative, while the
// paper's stated conclusion for exactly these parameters is ε ≈ 1. The
// overcount comes from the second factor re-counting arrangements already
// counted by the final ((|M|−1)·|N|/|M|)! factor. At the paper's larger
// scales (|M| ≳ 64) the formula is consistent (σ ≪ |N|!) and the ε ≈ 1
// conclusion follows. LogSigmaCorrected provides a count that supports the
// conclusion across the full range; ShufflingError clamps either variant
// into a valid probability-distance range.
func LogSigmaPaper(n, m int, q float64) (float64, error) {
	if err := checkSigmaArgs(n, m, q); err != nil {
		return 0, err
	}
	perWorker := float64(n) / float64(m)
	others := float64(m-1) * perWorker
	exchanged := math.Floor(q * perWorker)
	return LogFactorial(perWorker) +
		logPerm(others, exchanged) +
		logPerm(perWorker, exchanged) +
		LogFactorial(others), nil
}

// LogSigmaCorrected counts reachable configurations as (outgoing-set
// choices per worker) × (balanced assignments of the M·k outgoing samples,
// k to each worker) × (local orders):
//
//	σ' = C(N/M, k)^M · (M·k)!/(k!)^M · ((N/M)!)^M
//
// Unlike Equation 9, this count stays below |N|! for all of the paper's
// parameter ranges, so ε = 1 − σ'/|N|! ≈ 1 holds as Section IV-B claims
// ("for practical dataset sizes and number of workers the shuffling error
// would approach the value 1").
func LogSigmaCorrected(n, m int, q float64) (float64, error) {
	if err := checkSigmaArgs(n, m, q); err != nil {
		return 0, err
	}
	perWorker := float64(n) / float64(m)
	k := math.Floor(q * perWorker)
	logChoose := logPerm(perWorker, k) - LogFactorial(k)
	return float64(m)*logChoose +
		LogFactorial(float64(m)*k) - float64(m)*LogFactorial(k) +
		float64(m)*LogFactorial(perWorker), nil
}

func checkSigmaArgs(n, m int, q float64) error {
	if n <= 0 || m <= 1 {
		return fmt.Errorf("analysis: sigma(n=%d, m=%d): need n > 0 and m > 1", n, m)
	}
	if q < 0 || q > 1 {
		return fmt.Errorf("analysis: sigma: fraction %v out of [0,1]", q)
	}
	return nil
}

// ShufflingError computes ε(A,h,N) = 1 − σ/|N|! (Equation 11) using the
// corrected permutation count, clamped into [0,1] (σ estimates can exceed
// |N|! at toy sizes; a total-variation-style distance cannot leave the unit
// interval).
func ShufflingError(n, m int, q float64) (float64, error) {
	ls, err := LogSigmaCorrected(n, m, q)
	if err != nil {
		return 0, err
	}
	return epsilonFromLogSigma(ls, n), nil
}

// ShufflingErrorPaper computes Equation 11 with the verbatim Equation 9
// count, clamped into [0,1].
func ShufflingErrorPaper(n, m int, q float64) (float64, error) {
	ls, err := LogSigmaPaper(n, m, q)
	if err != nil {
		return 0, err
	}
	return epsilonFromLogSigma(ls, n), nil
}

func epsilonFromLogSigma(logSigma float64, n int) float64 {
	diff := logSigma - LogFactorial(float64(n))
	if diff > 0 {
		diff = 0
	}
	// exp underflows to 0 for any realistic size, making ε exactly 1 in
	// float64 — the paper's conclusion.
	return 1 - math.Exp(diff)
}

// BoundTerms evaluates the three terms of the convergence-rate upper bound
// for the smooth non-convex case (Equation 6):
//
//	T1 = sqrt(1/(S·|N|))   — the optimization term over S epochs
//	T2 = log|N| / |N|      — the shuffling-independent bias term
//	T3 = |N|·ε² / (b·|M|)  — the shuffling-error term
type BoundTerms struct {
	T1, T2, T3 float64
}

// Dominant returns which term dominates the bound ("T1", "T2", or "T3").
func (b BoundTerms) Dominant() string {
	switch {
	case b.T3 >= b.T1 && b.T3 >= b.T2:
		return "T3"
	case b.T1 >= b.T2:
		return "T1"
	default:
		return "T2"
	}
}

// ConvergenceBound computes the Equation 6 terms for n samples, m workers,
// local batch b, s epochs, and shuffling error eps.
func ConvergenceBound(n, m, b, s int, eps float64) (BoundTerms, error) {
	if n <= 0 || m <= 0 || b <= 0 || s <= 0 {
		return BoundTerms{}, fmt.Errorf("analysis: ConvergenceBound: all arguments must be positive (n=%d m=%d b=%d s=%d)", n, m, b, s)
	}
	return BoundTerms{
		T1: math.Sqrt(1 / (float64(s) * float64(n))),
		T2: math.Log(float64(n)) / float64(n),
		T3: float64(n) * eps * eps / (float64(b) * float64(m)),
	}, nil
}

// DominationThreshold returns sqrt(b·m/n), the largest shuffling error that
// does not dominate the convergence rate (Section IV-B's condition
// ε(A,h,N) ≤ sqrt(b|M|/|N|)).
func DominationThreshold(n, m, b int) float64 {
	return math.Sqrt(float64(b) * float64(m) / float64(n))
}

// Dominates reports whether the shuffling error of PLS(q) on (n, m)
// dominates the convergence bound at local batch size b.
func Dominates(n, m, b int, q float64) (bool, error) {
	eps, err := ShufflingError(n, m, q)
	if err != nil {
		return false, err
	}
	return eps > DominationThreshold(n, m, b), nil
}
