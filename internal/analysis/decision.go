package analysis

// Closed-loop Q decision function (DESIGN.md §16). The controller that
// retunes the exchange fraction per epoch lives in internal/shuffle/control;
// everything that decides HOW Q moves is here, as a pure function over a
// per-epoch signal, so the raise/hold/lower geometry is unit- and
// property-testable without a world.
//
// The three regions are carved out of the signal space in a fixed order, so
// by construction they are mutually exclusive and exhaustive — the
// testing/quick suite in decision_test.go pins that, along with the
// monotonicity and step-function shape of ε(n,m,q) the regions rest on:
//
//	safe   := ε(n,m,q) ≤ Safety·sqrt(b·m/n)   (Section IV-B non-domination)
//	Raise  := ¬safe ∧ Skew > SkewBound
//	Lower  := ¬Raise ∧ CommRatio > LowerRatio
//	Hold   := everything else
//
// The theory term gates the empirical one: when ε is already under the
// scaled non-domination threshold, locality provably cannot dominate the
// convergence bound and no amount of measured exposure skew justifies paying
// for more exchange. In the saturated regime (ε = 1 exactly in float64 for
// every practical size — the paper's conclusion), the gate is open and the
// deterministic skew measurement drives the raise decision.

import (
	"fmt"
	"math"
)

// QSignal is one epoch's decision input. Every field must be a
// deterministic function of (config, seed, epoch) on every rank — the
// controller broadcasts the decision, but the bitwise-determinism guarantee
// of two same-seed worlds also requires the INPUTS to agree across worlds,
// which rules out wall-clock timings (see DESIGN.md §16).
type QSignal struct {
	N int // dataset size |N|
	M int // workers |M|
	B int // local batch size b
	Q float64 // exchange fraction currently in force

	// Skew is the per-class exposure skew: the total-variation distance
	// between the label distribution a rank trained on this epoch and the
	// global label distribution, in [0,1]. 0 = perfectly representative.
	Skew float64
	// CommRatio is modeled exchange cost over modeled compute cost for the
	// epoch (both from deterministic byte/flop counts at fixed reference
	// rates). Above 1, the exchange no longer hides behind compute.
	CommRatio float64
}

// QPolicy parameterizes the decision regions and the step the controller
// takes inside them.
type QPolicy struct {
	Safety     float64 // fraction of the non-domination threshold deemed safe
	SkewBound  float64 // exposure skew above which ¬safe raises Q
	LowerRatio float64 // comm/compute ratio above which Q is lowered
	Step       float64 // additive Q step per decision
	MinQ, MaxQ float64 // clamp range for every decision
}

// DefaultQPolicy is the policy -auto-q runs with when no clamps are given:
// half the non-domination threshold as the safety margin, a 2% exposure
// skew bound, lower only when modeled exchange exceeds modeled compute, and
// 0.05 steps inside [0.05, 0.5].
func DefaultQPolicy() QPolicy {
	return QPolicy{Safety: 0.5, SkewBound: 0.02, LowerRatio: 1.0, Step: 0.05, MinQ: 0.05, MaxQ: 0.5}
}

// Validate reports whether the policy is internally consistent.
func (p QPolicy) Validate() error {
	if p.Step <= 0 {
		return fmt.Errorf("analysis: QPolicy: step %v must be positive", p.Step)
	}
	if p.MinQ < 0 || p.MaxQ > 1 || p.MinQ > p.MaxQ {
		return fmt.Errorf("analysis: QPolicy: clamp range [%v, %v] not within [0,1]", p.MinQ, p.MaxQ)
	}
	if p.Safety <= 0 {
		return fmt.Errorf("analysis: QPolicy: safety fraction %v must be positive", p.Safety)
	}
	if p.SkewBound < 0 {
		return fmt.Errorf("analysis: QPolicy: skew bound %v must be non-negative", p.SkewBound)
	}
	if p.LowerRatio <= 0 {
		return fmt.Errorf("analysis: QPolicy: lower ratio %v must be positive", p.LowerRatio)
	}
	return nil
}

// QRegion names the decision region a signal falls into.
type QRegion int

const (
	QHold QRegion = iota
	QRaise
	QLower
)

func (r QRegion) String() string {
	switch r {
	case QRaise:
		return "raise"
	case QLower:
		return "lower"
	default:
		return "hold"
	}
}

// Decision reasons, the canonical label set of the
// pls_controller_decisions_total telemetry counter and the wire codes of
// transport.QDecision.Reason.
const (
	ReasonHold        = "hold"
	ReasonRaiseSkew   = "raise-skew"
	ReasonRaiseClamp  = "raise-clamp"
	ReasonLowerHidden = "lower-hidden"
	ReasonLowerClamp  = "lower-clamp"
)

// qReasons orders the canonical reasons by wire code.
var qReasons = [...]string{ReasonHold, ReasonRaiseSkew, ReasonRaiseClamp, ReasonLowerHidden, ReasonLowerClamp}

// QReasons returns the canonical decision-reason labels (telemetry
// pre-registers one counter per label).
func QReasons() []string {
	out := make([]string, len(qReasons))
	copy(out, qReasons[:])
	return out
}

// ReasonCode maps a canonical reason to its fixed wire code (unknown
// reasons map to ReasonHold's code, keeping the wire payload total).
func ReasonCode(reason string) uint8 {
	for i, r := range qReasons {
		if r == reason {
			return uint8(i)
		}
	}
	return 0
}

// ReasonFromCode is the inverse of ReasonCode; out-of-range codes decode as
// ReasonHold.
func ReasonFromCode(code uint8) string {
	if int(code) < len(qReasons) {
		return qReasons[code]
	}
	return ReasonHold
}

func checkSignal(sig QSignal) error {
	if sig.B <= 0 {
		return fmt.Errorf("analysis: QSignal: batch size %d must be positive", sig.B)
	}
	if sig.Skew < 0 || sig.Skew > 1 {
		return fmt.Errorf("analysis: QSignal: skew %v out of [0,1]", sig.Skew)
	}
	if sig.CommRatio < 0 {
		return fmt.Errorf("analysis: QSignal: comm ratio %v must be non-negative", sig.CommRatio)
	}
	return nil
}

// ClassifyQ places a signal into exactly one decision region under the
// policy. It errors on invalid world shapes ((n, m, q) outside
// ShufflingError's domain) or signal values.
func ClassifyQ(sig QSignal, pol QPolicy) (QRegion, error) {
	if err := pol.Validate(); err != nil {
		return QHold, err
	}
	if err := checkSignal(sig); err != nil {
		return QHold, err
	}
	eps, err := ShufflingError(sig.N, sig.M, sig.Q)
	if err != nil {
		return QHold, err
	}
	safe := eps <= pol.Safety*DominationThreshold(sig.N, sig.M, sig.B)
	switch {
	case !safe && sig.Skew > pol.SkewBound:
		return QRaise, nil
	case sig.CommRatio > pol.LowerRatio:
		return QLower, nil
	default:
		return QHold, nil
	}
}

// DecideQ maps a signal to the next epoch's exchange fraction and the
// reason label for the move. Raises and lowers step by pol.Step, clamped
// into [MinQ, MaxQ]; a step pinned at its clamp reports the -clamp variant
// of its reason. Hold leaves Q untouched.
func DecideQ(sig QSignal, pol QPolicy) (float64, string, error) {
	region, err := ClassifyQ(sig, pol)
	if err != nil {
		return sig.Q, ReasonHold, err
	}
	switch region {
	case QRaise:
		next := snapQ(sig.Q + pol.Step)
		if next > pol.MaxQ {
			next = pol.MaxQ
		}
		if next <= sig.Q {
			return sig.Q, ReasonRaiseClamp, nil
		}
		return next, ReasonRaiseSkew, nil
	case QLower:
		next := snapQ(sig.Q - pol.Step)
		if next < pol.MinQ {
			next = pol.MinQ
		}
		if next >= sig.Q {
			return sig.Q, ReasonLowerClamp, nil
		}
		return next, ReasonLowerHidden, nil
	default:
		return sig.Q, ReasonHold, nil
	}
}

// snapQ rounds a stepped fraction to a 1e-6 grid before clamping — still a
// pure function, but repeated binary-inexact steps (0.2 + 5×0.05) land on
// 0.45, not 0.44999999999999996, so trajectories print and compare cleanly.
func snapQ(q float64) float64 {
	return math.Round(q*1e6) / 1e6
}
