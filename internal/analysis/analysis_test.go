package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLogFactorialSmallValues(t *testing.T) {
	facts := []float64{1, 1, 2, 6, 24, 120, 720, 5040}
	for n, f := range facts {
		if got := LogFactorial(float64(n)); math.Abs(got-math.Log(f)) > 1e-9 {
			t.Errorf("LogFactorial(%d) = %v, want ln(%v)", n, got, f)
		}
	}
}

func TestLogFactorialPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative argument")
		}
	}()
	LogFactorial(-1)
}

// TestSigmaSmallExact checks Equation 9 against a hand computation:
// N=4, M=2, Q=0.5 gives N/M=2, QN/M=1, (M-1)N/M=2, so
// σ = 2! * P(2,1) * P(2,1) * 2! = 2*2*2*2 = 16 and ε = 1 - 16/24 = 1/3.
func TestSigmaSmallExact(t *testing.T) {
	ls, err := LogSigmaPaper(4, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(math.Exp(ls)-16) > 1e-9 {
		t.Fatalf("sigma = %v, want 16", math.Exp(ls))
	}
	eps, err := ShufflingErrorPaper(4, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eps-1.0/3) > 1e-9 {
		t.Fatalf("epsilon = %v, want 1/3", eps)
	}
}

func TestSigmaQZero(t *testing.T) {
	// Q=0: both P terms are P(x,0)=1, σ = (N/M)! * ((M-1)N/M)! = 3!*3!;
	// the corrected count ((N/M)!)^M agrees at M=2.
	for _, f := range []func(int, int, float64) (float64, error){LogSigmaPaper, LogSigmaCorrected} {
		ls, err := f(6, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Log(6 * 6)
		if math.Abs(ls-want) > 1e-9 {
			t.Fatalf("log sigma = %v, want ln 36", ls)
		}
	}
}

// TestPaperFormulaOvercounts documents the Equation 9 inconsistency this
// reproduction found: at |N| = 1.2e6 and |M| = 4 the verbatim formula
// exceeds |N|!, while the corrected count stays (far) below it.
func TestPaperFormulaOvercounts(t *testing.T) {
	const n = 1_200_000
	logNFact := LogFactorial(n)
	lp, err := LogSigmaPaper(n, 4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if lp <= logNFact {
		t.Fatalf("expected Equation 9 to overcount at M=4 (documented discrepancy); got ln sigma = %v <= ln N! = %v", lp, logNFact)
	}
	lc, err := LogSigmaCorrected(n, 4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if lc >= logNFact {
		t.Fatalf("corrected count exceeds N!: %v >= %v", lc, logNFact)
	}
	// At the paper's larger scales the verbatim formula is consistent.
	lp2048, err := LogSigmaPaper(n, 2048, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if lp2048 >= logNFact {
		t.Fatalf("Equation 9 should be consistent at M=2048: %v >= %v", lp2048, logNFact)
	}
}

func TestEpsilonInUnitInterval(t *testing.T) {
	check := func(nRaw, mRaw uint8, qRaw uint8) bool {
		m := int(mRaw)%6 + 2
		n := m * (int(nRaw)%20 + 1)
		q := float64(qRaw%11) / 10
		for _, f := range []func(int, int, float64) (float64, error){ShufflingError, ShufflingErrorPaper} {
			eps, err := f(n, m, q)
			if err != nil || eps < 0 || eps > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	if _, err := LogSigmaPaper(0, 2, 0.5); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := LogSigmaCorrected(10, 1, 0.5); err == nil {
		t.Error("m=1 accepted")
	}
	if _, err := LogSigmaPaper(10, 2, 1.5); err == nil {
		t.Error("q=1.5 accepted")
	}
	if _, err := ConvergenceBound(0, 1, 1, 1, 0.5); err == nil {
		t.Error("bad bound args accepted")
	}
}

// TestPaperConclusion reproduces the Section IV-B headline: "for training
// ImageNet (|N| = 1.2e6) on any number of workers 4 <= |M| <= 100,000 and b
// giving a total mini-batch under 100K, the shuffling error ~ 1" — which
// exceeds the sqrt(b|M|/|N|) threshold, so the error dominates Equation 6.
func TestPaperConclusion(t *testing.T) {
	const n = 1_200_000
	// Q=1 is excluded: a full balanced exchange degenerates to global
	// shuffling and reaches every permutation (σ' = |N|!, ε = 0), so the
	// paper's blanket "ε ≈ 1 for any Q" only holds for partial exchanges.
	for _, m := range []int{4, 128, 2048, 100_000} {
		for _, q := range []float64{0, 0.1, 0.5} {
			eps, err := ShufflingError(n, m, q)
			if err != nil {
				t.Fatal(err)
			}
			if eps < 0.999999 {
				t.Fatalf("epsilon(N=1.2M, M=%d, Q=%v) = %v, paper says ~1", m, q, eps)
			}
			// Total mini-batch < 100K: pick b so that b*m <= 100_000.
			b := 100_000 / m
			if b == 0 {
				b = 1
			}
			dom, err := Dominates(n, m, b, q)
			if err != nil {
				t.Fatal(err)
			}
			if !dom {
				t.Fatalf("shuffling error does not dominate at M=%d b=%d, contradicting the paper", m, b)
			}
		}
	}
}

// TestFullExchangeIsGlobalShuffle: under the corrected count, Q=1 reaches
// every permutation of the dataset (any balanced redistribution plus local
// orders), i.e. partial local shuffling with Q=1 degenerates to a full
// global shuffle with zero shuffling error — matching Section III-A's
// statement that "a value of Q = 1 results in a full global shuffle".
func TestFullExchangeIsGlobalShuffle(t *testing.T) {
	ls, err := LogSigmaCorrected(1_200_000, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ls-LogFactorial(1_200_000)) > 1e-6*ls {
		t.Fatalf("Q=1 corrected sigma = %v, want ln N! = %v", ls, LogFactorial(1_200_000))
	}
	eps, err := ShufflingError(1_200_000, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	if eps > 1e-9 {
		t.Fatalf("Q=1 epsilon = %v, want ~0", eps)
	}
}

func TestDominationThreshold(t *testing.T) {
	// sqrt(32*512/1.2e6) ~= 0.1168
	got := DominationThreshold(1_200_000, 512, 32)
	if math.Abs(got-math.Sqrt(32*512.0/1_200_000)) > 1e-12 {
		t.Fatalf("threshold = %v", got)
	}
}

func TestBoundTermsAndDominant(t *testing.T) {
	b, err := ConvergenceBound(1_200_000, 512, 32, 90, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if b.T1 <= 0 || b.T2 <= 0 || b.T3 <= 0 {
		t.Fatalf("terms: %+v", b)
	}
	// With eps ~ 1, T3 = N/(bM) = 73 >> T1, T2.
	if b.Dominant() != "T3" {
		t.Fatalf("dominant term = %s, want T3 (%+v)", b.Dominant(), b)
	}
	// With a tiny eps the optimization term dominates instead.
	b2, err := ConvergenceBound(1_200_000, 512, 32, 90, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Dominant() == "T3" {
		t.Fatalf("T3 should not dominate with eps=1e-6: %+v", b2)
	}
}

// TestSigmaMonotoneInQ: more exchange can only reach more permutations
// (P(n,k) is non-decreasing in k), so sigma is non-decreasing in Q.
func TestSigmaMonotoneInQ(t *testing.T) {
	for _, f := range []func(int, int, float64) (float64, error){LogSigmaPaper, LogSigmaCorrected} {
		prev := -1.0
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 1} {
			ls, err := f(1000, 10, q)
			if err != nil {
				t.Fatal(err)
			}
			if ls < prev {
				t.Fatalf("sigma decreased at q=%v", q)
			}
			prev = ls
		}
	}
}

func BenchmarkShufflingError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ShufflingError(1_200_000, 2048, 0.3); err != nil {
			b.Fatal(err)
		}
	}
}
