package transport

import "sync"

// WireBuf is a pooled wire-encoding buffer. Pooling the struct pointer (not
// the raw []byte) avoids the interface-boxing allocation a naked slice would
// pay on every Put. The TCP backend threads WireBufs from Send through the
// per-peer writer queue and back into the pool once the frame is confirmed
// written, so a steady-state send allocates nothing.
type WireBuf struct {
	B []byte
}

// maxPooledWireBuf caps the capacity a buffer may keep when returned to the
// pool. Occasional giants (a full-model gradient frame, a fat sample batch)
// are dropped rather than pinned in memory forever.
const maxPooledWireBuf = 4 << 20

var wireBufPool = sync.Pool{New: func() any { return new(WireBuf) }}

// GetWireBuf fetches a buffer from the pool. Its B slice has length zero but
// retains capacity from earlier use.
func GetWireBuf() *WireBuf {
	return wireBufPool.Get().(*WireBuf)
}

// PutWireBuf returns a buffer to the pool. The caller must not touch wb or
// wb.B afterwards.
func PutWireBuf(wb *WireBuf) {
	if wb == nil {
		return
	}
	if cap(wb.B) > maxPooledWireBuf {
		wb.B = nil
	} else {
		wb.B = wb.B[:0]
	}
	wireBufPool.Put(wb)
}
