//go:build !race

package transport

// raceEnabled reports that this test binary was built with -race.
const raceEnabled = false
