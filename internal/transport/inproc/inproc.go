// Package inproc is the in-process transport backend: all ranks live in one
// OS process (one goroutine per rank, as mpi.Run arranges) and a Send is a
// synchronous function call into the destination rank's handler. This is
// the refactored form of the original channel-based runtime — delivery
// order per (source, destination) pair is the sender's program order, which
// is exactly the non-overtaking guarantee the mailbox layer needs.
//
// Payloads are defensively cloned for the common slice types so
// distributed-memory semantics hold despite the shared address space;
// other types pass by reference and must be treated as immutable after a
// send (see transport.ClonePayload).
package inproc

import (
	"fmt"
	"sync"
	"sync/atomic"

	"plshuffle/internal/transport"
)

// Network is a world of in-process ranks. Create it with NewNetwork, then
// Attach each rank's handler before any traffic flows.
type Network struct {
	size     int
	handlers []transport.Handler
	mu       sync.RWMutex
	stats    []connStats
}

type connStats struct {
	framesSent atomic.Int64
	framesRecv atomic.Int64
	bytesSent  atomic.Int64
	bytesRecv  atomic.Int64
}

// NewNetwork creates an inproc network with the given number of ranks.
func NewNetwork(size int) *Network {
	if size <= 0 {
		panic(fmt.Sprintf("inproc: NewNetwork(%d): size must be positive", size))
	}
	return &Network{
		size:     size,
		handlers: make([]transport.Handler, size),
		stats:    make([]connStats, size),
	}
}

// Size returns the number of ranks in the network.
func (n *Network) Size() int { return n.size }

// Attach registers rank's inbound handler and returns its connection
// endpoint. Each rank must be attached exactly once before it exchanges
// traffic.
func (n *Network) Attach(rank int, h transport.Handler) transport.Conn {
	if rank < 0 || rank >= n.size {
		panic(fmt.Sprintf("inproc: Attach(%d): rank out of range [0,%d)", rank, n.size))
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.handlers[rank] != nil {
		panic(fmt.Sprintf("inproc: Attach(%d): rank already attached", rank))
	}
	n.handlers[rank] = h
	return &conn{net: n, rank: rank}
}

type conn struct {
	net    *Network
	rank   int
	closed atomic.Bool
}

func (c *conn) Rank() int { return c.rank }
func (c *conn) Size() int { return c.net.size }

// Send clones the payload and delivers it synchronously into the
// destination handler. It cannot fail for in-range destinations.
func (c *conn) Send(dst, tag int, payload any) error {
	if dst < 0 || dst >= c.net.size {
		return fmt.Errorf("inproc: Send: rank %d out of range [0,%d)", dst, c.net.size)
	}
	if c.closed.Load() {
		return fmt.Errorf("inproc: Send: connection for rank %d is closed", c.rank)
	}
	c.net.mu.RLock()
	h := c.net.handlers[dst]
	c.net.mu.RUnlock()
	if h == nil {
		return fmt.Errorf("inproc: Send: destination rank %d not attached", dst)
	}
	sz := transport.PayloadWireSize(payload)
	src, dstStats := &c.net.stats[c.rank], &c.net.stats[dst]
	src.framesSent.Add(1)
	src.bytesSent.Add(sz)
	dstStats.framesRecv.Add(1)
	dstStats.bytesRecv.Add(sz)
	h(transport.Frame{Src: c.rank, Dst: dst, Tag: tag, Payload: transport.ClonePayload(payload)})
	return nil
}

func (c *conn) Stats() transport.Stats {
	s := &c.net.stats[c.rank]
	return transport.Stats{
		FramesSent: s.framesSent.Load(),
		FramesRecv: s.framesRecv.Load(),
		BytesSent:  s.bytesSent.Load(),
		BytesRecv:  s.bytesRecv.Load(),
		Wire:       false,
	}
}

// Close marks the endpoint closed. Delivery is synchronous, so there is
// nothing to drain.
func (c *conn) Close() error {
	c.closed.Store(true)
	return nil
}
