// Package inproc is the in-process transport backend: all ranks live in one
// OS process (one goroutine per rank, as mpi.Run arranges) and a Send is a
// synchronous function call into the destination rank's handler. This is
// the refactored form of the original channel-based runtime — delivery
// order per (source, destination) pair is the sender's program order, which
// is exactly the non-overtaking guarantee the mailbox layer needs.
//
// Payloads are defensively cloned for the common slice types so
// distributed-memory semantics hold despite the shared address space;
// other types pass by reference and must be treated as immutable after a
// send (see transport.ClonePayload).
package inproc

import (
	"fmt"
	"sync"
	"sync/atomic"

	"plshuffle/internal/transport"
)

// Network is a world of in-process ranks. Create it with NewNetwork, then
// Attach each rank's handler before any traffic flows.
type Network struct {
	size     int
	handlers []transport.Handler
	mu       sync.RWMutex
	stats    []connStats
	dead     []bool                     // rank → killed (fault injection)
	onFail   []func(transport.PeerError) // per-rank failure callbacks
}

type connStats struct {
	framesSent atomic.Int64
	framesRecv atomic.Int64
	bytesSent  atomic.Int64
	bytesRecv  atomic.Int64
}

// NewNetwork creates an inproc network with the given number of ranks.
func NewNetwork(size int) *Network {
	if size <= 0 {
		panic(fmt.Sprintf("inproc: NewNetwork(%d): size must be positive", size))
	}
	return &Network{
		size:     size,
		handlers: make([]transport.Handler, size),
		stats:    make([]connStats, size),
		dead:     make([]bool, size),
		onFail:   make([]func(transport.PeerError), size),
	}
}

// Kill simulates the abrupt death of one rank: its handler stops receiving,
// every Send toward it fails with a *transport.PeerError, and every other
// rank's registered failure callback fires — the in-process analogue of a
// SIGKILLed process whose peers detect the silence. Killing a rank twice is
// a no-op. This is the fault-injection hook the chaos tests use to exercise
// graceful degradation without real processes.
func (n *Network) Kill(rank int) {
	if rank < 0 || rank >= n.size {
		panic(fmt.Sprintf("inproc: Kill(%d): rank out of range [0,%d)", rank, n.size))
	}
	n.mu.Lock()
	if n.dead[rank] {
		n.mu.Unlock()
		return
	}
	n.dead[rank] = true
	n.handlers[rank] = nil
	callbacks := make([]func(transport.PeerError), 0, n.size)
	for r, cb := range n.onFail {
		if r != rank && !n.dead[r] && cb != nil {
			callbacks = append(callbacks, cb)
		}
	}
	n.mu.Unlock()
	pe := transport.PeerError{Rank: rank, Phase: transport.PhaseRecv}
	for _, cb := range callbacks {
		cb(pe)
	}
}

// Size returns the number of ranks in the network.
func (n *Network) Size() int { return n.size }

// Attach registers rank's inbound handler and returns its connection
// endpoint. Each rank must be attached exactly once before it exchanges
// traffic.
func (n *Network) Attach(rank int, h transport.Handler) transport.Conn {
	if rank < 0 || rank >= n.size {
		panic(fmt.Sprintf("inproc: Attach(%d): rank out of range [0,%d)", rank, n.size))
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.handlers[rank] != nil {
		panic(fmt.Sprintf("inproc: Attach(%d): rank already attached", rank))
	}
	n.handlers[rank] = h
	return &conn{net: n, rank: rank}
}

type conn struct {
	net    *Network
	rank   int
	closed atomic.Bool
}

func (c *conn) Rank() int { return c.rank }
func (c *conn) Size() int { return c.net.size }

// Send clones the payload and delivers it synchronously into the
// destination handler. It cannot fail for in-range destinations.
func (c *conn) Send(dst, tag int, payload any) error {
	if dst < 0 || dst >= c.net.size {
		return fmt.Errorf("inproc: Send: rank %d out of range [0,%d)", dst, c.net.size)
	}
	if c.closed.Load() {
		return fmt.Errorf("inproc: Send: connection for rank %d is closed", c.rank)
	}
	c.net.mu.RLock()
	h := c.net.handlers[dst]
	dead := c.net.dead[dst]
	c.net.mu.RUnlock()
	if dead {
		return &transport.PeerError{Rank: dst, Phase: transport.PhaseSend}
	}
	if h == nil {
		return fmt.Errorf("inproc: Send: destination rank %d not attached", dst)
	}
	sz := transport.PayloadWireSize(payload)
	src, dstStats := &c.net.stats[c.rank], &c.net.stats[dst]
	src.framesSent.Add(1)
	src.bytesSent.Add(sz)
	dstStats.framesRecv.Add(1)
	dstStats.bytesRecv.Add(sz)
	var wire int64
	if dst != c.rank {
		// The deterministic frame size a wire backend would have moved;
		// self-delivery never touches a wire on any backend.
		wire = transport.FrameWireSize(payload)
	}
	h(transport.Frame{Src: c.rank, Dst: dst, Tag: tag, Payload: transport.ClonePayload(payload), Wire: wire})
	return nil
}

// SendMetered implements transport.MeteredSender: inproc frames have a
// deterministic would-be wire size (FrameWireSize), reported exactly so
// byte accounting behaves identically across backends.
func (c *conn) SendMetered(dst, tag int, payload any) (int64, error) {
	if err := c.Send(dst, tag, payload); err != nil {
		return 0, err
	}
	if dst == c.rank {
		return 0, nil
	}
	return transport.FrameWireSize(payload), nil
}

func (c *conn) Stats() transport.Stats {
	s := &c.net.stats[c.rank]
	return transport.Stats{
		FramesSent: s.framesSent.Load(),
		FramesRecv: s.framesRecv.Load(),
		BytesSent:  s.bytesSent.Load(),
		BytesRecv:  s.bytesRecv.Load(),
		Wire:       false,
	}
}

// Close marks the endpoint closed. Delivery is synchronous, so there is
// nothing to drain.
func (c *conn) Close() error {
	c.closed.Store(true)
	return nil
}

// OnPeerFailure registers this rank's peer-failure callback (invoked by
// Network.Kill for every surviving rank). Implements
// transport.FailureNotifier.
func (c *conn) OnPeerFailure(cb func(transport.PeerError)) {
	c.net.mu.Lock()
	c.net.onFail[c.rank] = cb
	c.net.mu.Unlock()
}

// Kill abruptly removes this rank from the network (transport.Killer):
// the fault-injection analogue of the process dying.
func (c *conn) Kill() {
	c.closed.Store(true)
	c.net.Kill(c.rank)
}

var (
	_ transport.FailureNotifier = (*conn)(nil)
	_ transport.Killer          = (*conn)(nil)
	_ transport.MeteredSender   = (*conn)(nil)
)
