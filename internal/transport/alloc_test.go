package transport

import (
	"testing"

	"plshuffle/internal/data"
)

// TestAppendPayloadSteadyStateAllocs pins the zero-allocation property of
// the append-into-buffer encoder: once the destination buffer has grown to
// its steady-state capacity, re-encoding allocates nothing.
func TestAppendPayloadSteadyStateAllocs(t *testing.T) {
	skipIfRace(t)
	floats := make([]float32, 512)
	for i := range floats {
		floats[i] = float32(i)
	}
	batch := data.EncodeSampleBatch([]data.Sample{
		{ID: 1, Label: 2, Features: floats[:16], Bytes: 117 << 10},
		{ID: 2, Label: 3, Features: floats[:16], Bytes: 117 << 10},
	})
	for _, tc := range []struct {
		name    string
		payload any
	}{
		{"float32", floats},
		{"bytesBatch", batch},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf []byte
			var err error
			// Warm up: grow buf to its final capacity.
			if buf, err = AppendPayload(buf[:0], tc.payload); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(100, func() {
				buf, err = AppendPayload(buf[:0], tc.payload)
			})
			if err != nil {
				t.Fatal(err)
			}
			if allocs > 0 {
				t.Fatalf("steady-state AppendPayload allocates %.1f times per call, want 0", allocs)
			}
		})
	}
}

// TestPooledFramePathSteadyStateAllocs drives the exact sequence the TCP
// sender uses per frame — GetWireBuf, AppendDataFrame, PutWireBuf — and
// asserts the steady state is allocation-free: the pool recycles the
// buffer, and framing appends into its retained capacity.
func TestPooledFramePathSteadyStateAllocs(t *testing.T) {
	skipIfRace(t)
	raw := make([]byte, 4096)
	for i := range raw {
		raw[i] = byte(i)
	}
	// Box once, as tcp.Send receives it: the payload is already an `any` by
	// the time it reaches the framing path.
	var payload any = raw
	// Warm up the pool and the buffer capacity.
	for i := 0; i < 4; i++ {
		wb := GetWireBuf()
		var err error
		wb.B, err = AppendDataFrame(wb.B[:0], 0, 1, 7, payload)
		if err != nil {
			t.Fatal(err)
		}
		PutWireBuf(wb)
	}
	var encodeErr error
	allocs := testing.AllocsPerRun(200, func() {
		wb := GetWireBuf()
		wb.B, encodeErr = AppendDataFrame(wb.B[:0], 0, 1, 7, payload)
		PutWireBuf(wb)
	})
	if encodeErr != nil {
		t.Fatal(encodeErr)
	}
	if allocs > 0 {
		t.Fatalf("pooled frame path allocates %.1f times per frame, want 0", allocs)
	}
}

// TestAppendDataFrameMatchesMarshalFrame pins that the pooled path emits
// byte-identical frames to the allocating MarshalFrame path, so switching
// the TCP sender over cannot change anything on the wire.
func TestAppendDataFrameMatchesMarshalFrame(t *testing.T) {
	payloads := []any{
		[]byte{1, 2, 3},
		[]float32{1.5, -2.5},
		data.Sample{ID: 3, Label: 1, Features: []float32{9}, Bytes: 5},
		"hello",
		nil,
	}
	for _, p := range payloads {
		enc, err := EncodePayload(p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := MarshalFrame(WireFrame{Kind: KindData, Src: 2, Dst: 5, Tag: -42, Payload: enc})
		if err != nil {
			t.Fatal(err)
		}
		got, err := AppendDataFrame(nil, 2, 5, -42, p)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("payload %T: AppendDataFrame differs from MarshalFrame:\n got  %x\n want %x", p, got, want)
		}
	}
}

// TestWireBufPoolDropsOversizeBuffers verifies the pool does not pin giant
// buffers: a buffer past the cap is dropped on Put rather than recycled.
func TestWireBufPoolDropsOversizeBuffers(t *testing.T) {
	wb := GetWireBuf()
	wb.B = make([]byte, maxPooledWireBuf+1)
	PutWireBuf(wb) // must not retain; nothing observable to assert beyond not panicking
	got := GetWireBuf()
	if cap(got.B) > maxPooledWireBuf {
		t.Fatalf("pool returned an oversize buffer of cap %d", cap(got.B))
	}
	PutWireBuf(got)
}

// skipIfRace skips allocation-regression tests under the race detector
// (see raceEnabled).
func skipIfRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
}
