// Package tcp is the wire transport backend: every rank is an OS process
// and frames move over persistent localhost/LAN TCP connections as
// length-prefixed binary records (transport.WireFrame).
//
// # Bootstrap (rendezvous)
//
// Rank 0 listens on the rendezvous address. Every rank also opens its own
// data listener on an ephemeral port. Ranks 1..M-1 dial the rendezvous
// (with retry and backoff — process start order is arbitrary) and send a
// hello frame carrying their data address; rank 0 collects all M-1 hellos,
// then answers each with the complete rank↔address table. After the
// rendezvous closes, the world is fully addressable and peer connections
// form lazily: the first Send to a peer dials its data listener and
// identifies itself with a hello frame, and the single established
// connection carries frames in both directions.
//
// # Ordering, retries, failure
//
// Each peer has one writer goroutine draining an unbounded FIFO queue, so
// Send is eager (never blocks on the receiver) and per-(pair) frame order
// is the sender's program order — the non-overtaking guarantee the mailbox
// layer requires. Dials and writes have deadlines; a failed connection is
// redialed with exponential backoff up to a bounded attempt budget, after
// which the transport records a wrapped error, fails the queued frame, and
// surfaces the error on subsequent Send and Close calls. Close drains the
// outbound queues (bounded by DrainTimeout) before tearing connections
// down.
package tcp

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"plshuffle/internal/transport"
	"plshuffle/internal/transport/wirecomp"
)

// Config describes one rank's endpoint of a TCP world.
type Config struct {
	// Rank and Size identify this process within the world.
	Rank int
	Size int
	// Rendezvous is the host:port rank 0 listens on for bootstrap and the
	// other ranks dial. Required unless Size == 1.
	Rendezvous string
	// RendezvousListener, when non-nil, is a pre-bound listener rank 0 uses
	// instead of binding Rendezvous itself (lets callers reserve a port
	// without a race). Ignored on other ranks.
	RendezvousListener net.Listener
	// ListenAddr is the bind address for this rank's data listener.
	// Default "127.0.0.1:0" (ephemeral port).
	ListenAddr string
	// AdvertiseAddr overrides the address sent to peers (for NATed or
	// multi-homed hosts). Default: the data listener's own address.
	AdvertiseAddr string

	// DialTimeout bounds one dial attempt. Default 2s.
	DialTimeout time.Duration
	// DialAttempts bounds dial/redial retries per frame before the
	// transport gives up. Default 8.
	DialAttempts int
	// DialBackoff is the initial retry backoff, doubled per attempt and
	// capped at 1s. Default 25ms.
	DialBackoff time.Duration
	// BootstrapTimeout bounds the whole rendezvous phase. Default 30s.
	BootstrapTimeout time.Duration
	// WriteTimeout bounds one frame write. Default 30s.
	WriteTimeout time.Duration
	// ReadIdleTimeout, when positive, is the per-read deadline on
	// established data connections. Zero (the default) means reads block
	// indefinitely — epochs between exchanges can be arbitrarily long.
	// When heartbeats are enabled it defaults to PeerTimeout, since a
	// healthy peer then guarantees traffic at least every
	// HeartbeatInterval.
	ReadIdleTimeout time.Duration
	// RetryTimeout is the TOTAL deadline for one outbound batch's
	// dial/redial retry loop, layered on top of the per-attempt budget
	// (DialAttempts × backoff): whichever bound is hit first marks the
	// peer dead. Default 20s.
	RetryTimeout time.Duration
	// DrainTimeout bounds how long Close waits for queued outbound frames
	// to flush. Default 10s.
	DrainTimeout time.Duration

	// HeartbeatInterval, when positive, enables liveness detection: a
	// background prober enqueues a KindPing frame to every peer each
	// interval. Because pings ride the normal write path — dial, retry
	// budget, deadlines — a dead or partitioned peer is detected even by
	// ranks that never send it data, surfacing as a *transport.PeerError
	// through OnPeerFailure instead of an eternal block. Zero (the
	// default) disables heartbeats; byte accounting then stays exactly the
	// data traffic, which the wire-exactness tests rely on.
	HeartbeatInterval time.Duration
	// PeerTimeout bounds how long a silent established connection is
	// trusted when heartbeats are enabled (it becomes the read deadline on
	// data connections). Default 4 × HeartbeatInterval.
	PeerTimeout time.Duration

	// Compress enables wirecomp block compression of large data-frame
	// payloads (coalesced sample batches). It is negotiated per connection
	// at bootstrap: this rank advertises the capability in its hello, the
	// rendezvous table redistributes every rank's flags, and a frame is
	// compressed toward a peer only when BOTH ends enabled it — a mixed
	// world degrades to plain frames pairwise. Compressed frames travel as
	// KindDataZ; byte counters always report the real (compressed) socket
	// bytes. Default off.
	Compress bool

	// Dial overrides the dial function (tests inject flaky networks).
	// Default net.DialTimeout("tcp", addr, timeout).
	Dial func(addr string, timeout time.Duration) (net.Conn, error)

	// MaxSize, when greater than Size, makes the world elastic: rank slots
	// [Size, MaxSize) are reserved for mid-run joiners. Rank 0 keeps the
	// rendezvous listener open after bootstrap and answers later hellos
	// (Src == -1) by assigning the next free slot and returning the peer
	// table; the join is surfaced through OnJoinRequest, and the running
	// members attach the new peer with AdmitPeer once the upper-layer join
	// protocol tells them to. Must be identical on every rank. Zero (the
	// default) means a fixed world (MaxSize == Size).
	MaxSize int
	// Join makes New join an already-running elastic world instead of
	// bootstrapping one: Rank and Size are ignored, the endpoint dials
	// Rendezvous, announces itself with a joiner hello, and adopts the rank
	// slot and peer table the root assigns. MaxSize must match the running
	// world's. After New returns, Rank() reports the assigned slot and
	// Size() reports MaxSize (the rank name space); the actual live
	// membership arrives through the upper-layer admission protocol.
	Join bool
}

// capacity is the size of the rank name space: every per-rank table is
// sized by it, and latent slots above Size are admitted lazily.
func (c *Config) capacity() int {
	if c.MaxSize > c.Size {
		return c.MaxSize
	}
	return c.Size
}

// capabilityFlags renders the config's negotiable capabilities as the wire
// flag byte carried by v2 hellos and tables.
func (c *Config) capabilityFlags() byte {
	var f byte
	if c.Compress {
		f |= transport.FlagCompress
	}
	return f
}

// minCompressPayload is the smallest encoded payload worth compressing:
// below it the codec's tag overhead and the extra copy outweigh any win
// (control frames, single-sample batches, ref frames).
const minCompressPayload = 512

func (c *Config) fillDefaults() {
	if c.ListenAddr == "" {
		c.ListenAddr = "127.0.0.1:0"
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.DialAttempts <= 0 {
		c.DialAttempts = 8
	}
	if c.DialBackoff <= 0 {
		c.DialBackoff = 25 * time.Millisecond
	}
	if c.BootstrapTimeout <= 0 {
		c.BootstrapTimeout = 30 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.RetryTimeout <= 0 {
		c.RetryTimeout = 20 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.HeartbeatInterval > 0 {
		if c.PeerTimeout <= 0 {
			c.PeerTimeout = 4 * c.HeartbeatInterval
		}
		if c.ReadIdleTimeout <= 0 {
			c.ReadIdleTimeout = c.PeerTimeout
		}
	}
	if c.Dial == nil {
		c.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
}

func (c *Config) validate() error {
	if c.Join {
		if c.Rendezvous == "" {
			return fmt.Errorf("tcp: join mode requires a rendezvous address")
		}
		if c.MaxSize <= 1 {
			return fmt.Errorf("tcp: join mode requires MaxSize > 1 (the running world's capacity)")
		}
		return nil
	}
	if c.Size <= 0 {
		return fmt.Errorf("tcp: world size %d must be positive", c.Size)
	}
	if c.Rank < 0 || c.Rank >= c.Size {
		return fmt.Errorf("tcp: rank %d out of range [0,%d)", c.Rank, c.Size)
	}
	if c.MaxSize != 0 && c.MaxSize < c.Size {
		return fmt.Errorf("tcp: MaxSize %d smaller than world size %d", c.MaxSize, c.Size)
	}
	if c.Size > 1 && c.Rendezvous == "" && (c.Rank != 0 || c.RendezvousListener == nil) {
		return fmt.Errorf("tcp: rendezvous address required for world size %d", c.Size)
	}
	if c.capacity() > 1 && c.Rendezvous == "" && (c.Rank != 0 || c.RendezvousListener == nil) {
		return fmt.Errorf("tcp: rendezvous address required for elastic capacity %d", c.capacity())
	}
	return nil
}

// Conn is one rank's TCP transport endpoint. Create it with New.
type Conn struct {
	cfg     Config
	handler transport.Handler

	listener net.Listener
	// addrMu guards addrs and peerFlags, which elastic worlds mutate at
	// runtime (the root's join accept loop and AdmitPeer); peers itself is
	// immutable after New — latent slots get a peer struct up front.
	addrMu    sync.RWMutex
	addrs     []string // rank → data address ("" = latent, not yet admitted)
	peerFlags []byte   // rank → negotiated capability flags (v2 table)
	peers     []*peer  // peers[ownRank] == nil

	// Elastic state: the retained rendezvous listener (rank 0 of a world
	// with MaxSize > Size), the next joiner slot, the join callback, and
	// joins queued before the callback was registered.
	rendezvousLn net.Listener
	nextJoin     int
	onJoin       func(transport.JoinRequest)
	pendingJoins []transport.JoinRequest

	framesSent atomic.Int64
	framesRecv atomic.Int64
	bytesSent  atomic.Int64
	bytesRecv  atomic.Int64

	// Compression accounting (transport.CompressionStatser): payload bytes
	// entering the compressor vs leaving it, counted only for frames that
	// actually shipped compressed.
	compRaw  atomic.Int64
	compWire atomic.Int64

	// Per-kind frame and byte counters (transport.KindStatser) and per-peer
	// last-heard stamps in unix nanos (transport.LivenessStatser). All
	// plain atomics so telemetry scrapes race-free against traffic.
	sentKind      [transport.NumKinds]atomic.Int64
	recvKind      [transport.NumKinds]atomic.Int64
	sentKindBytes [transport.NumKinds]atomic.Int64
	recvKindBytes [transport.NumKinds]atomic.Int64
	lastHeard     []atomic.Int64 // rank → unix nanos, 0 = never

	closed    chan struct{}
	closeOnce sync.Once
	killed    atomic.Bool
	readerWG  sync.WaitGroup
	writerWG  sync.WaitGroup
	beatWG    sync.WaitGroup

	connsMu sync.Mutex
	conns   map[net.Conn]struct{} // every live socket, for shutdown

	errMu  sync.Mutex
	err    error
	onFail func(transport.PeerError) // registered via OnPeerFailure
}

// track remembers a live socket so Close can tear it down even if it never
// became a peer's canonical write connection.
func (c *Conn) track(conn net.Conn) {
	c.connsMu.Lock()
	if c.conns == nil {
		c.conns = make(map[net.Conn]struct{})
	}
	c.conns[conn] = struct{}{}
	c.connsMu.Unlock()
}

func (c *Conn) untrack(conn net.Conn) {
	c.connsMu.Lock()
	delete(c.conns, conn)
	c.connsMu.Unlock()
}

// peer is the outbound side toward one remote rank: an unbounded FIFO frame
// queue drained by a single writer goroutine, plus the current live
// connection (shared with the inbound reader).
type peer struct {
	rank int

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*transport.WireBuf // marshalled frames, length prefix included
	spare   []*transport.WireBuf // recycled backing array for queue
	conn    net.Conn             // current write connection; nil → (re)dial on demand
	closing bool
	dead    bool                 // retry budget exhausted; queue is discarded
	err     *transport.PeerError // why the peer is dead (set with dead)

	iov net.Buffers // writer-goroutine scratch for vectored writes
}

// New establishes this rank's endpoint: it binds the data listener, runs
// the rendezvous bootstrap, and starts the accept loop. Inbound data frames
// are decoded and passed to h (possibly from multiple reader goroutines).
func New(cfg Config, h transport.Handler) (*Conn, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if h == nil {
		return nil, fmt.Errorf("tcp: nil frame handler")
	}
	capacity := cfg.capacity()
	c := &Conn{cfg: cfg, handler: h, closed: make(chan struct{})}
	c.lastHeard = make([]atomic.Int64, capacity)
	c.nextJoin = cfg.Size

	if capacity == 1 {
		// Single-rank fixed world: only self-delivery, no sockets.
		c.addrs = []string{""}
		c.peerFlags = []byte{cfg.capabilityFlags()}
		c.peers = []*peer{nil}
		return c, nil
	}

	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("tcp: rank %d: binding data listener: %w", cfg.Rank, err)
	}
	c.listener = ln
	advertise := cfg.AdvertiseAddr
	if advertise == "" {
		advertise = ln.Addr().String()
	}

	if cfg.Join {
		err = c.bootstrapJoin(advertise)
	} else {
		err = c.bootstrap(advertise)
	}
	if err != nil {
		ln.Close()
		return nil, err
	}

	// Every slot of the rank name space gets its peer struct and writer up
	// front, latent joiner slots included: an idle writer goroutine parked
	// on its condition variable is cheap, and it means admission never has
	// to mutate the peers table under traffic.
	c.peers = make([]*peer, capacity)
	for r := 0; r < capacity; r++ {
		if r == c.cfg.Rank {
			continue
		}
		p := &peer{rank: r}
		p.cond = sync.NewCond(&p.mu)
		c.peers[r] = p
		c.writerWG.Add(1)
		go c.writeLoop(p)
	}

	c.readerWG.Add(1)
	go c.acceptLoop()
	if c.rendezvousLn != nil {
		c.readerWG.Add(1)
		go c.joinAcceptLoop()
	}
	if cfg.HeartbeatInterval > 0 {
		c.beatWG.Add(1)
		go c.heartbeatLoop()
	}
	return c, nil
}

// heartbeatLoop enqueues a KindPing frame to every live peer each interval.
// Pings ride the normal write path — dial, retry budget, deadlines — so a
// dead peer is detected (and surfaces through OnPeerFailure) even by ranks
// that never send it data.
func (c *Conn) heartbeatLoop() {
	defer c.beatWG.Done()
	ticker := time.NewTicker(c.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.closed:
			return
		case <-ticker.C:
		}
		for _, p := range c.peers {
			if p == nil {
				continue
			}
			// A latent joiner slot has no address yet: pinging it would burn
			// the dial budget and poison the failure registry with a rank
			// that was never alive. Probing begins once the peer is admitted.
			c.addrMu.RLock()
			admitted := c.addrs[p.rank] != ""
			c.addrMu.RUnlock()
			if !admitted {
				continue
			}
			wb := transport.GetWireBuf()
			buf, err := transport.AppendFrame(wb.B[:0], transport.WireFrame{
				Kind: transport.KindPing,
				Src:  int32(c.cfg.Rank),
				Dst:  int32(p.rank),
			})
			wb.B = buf
			if err != nil {
				transport.PutWireBuf(wb)
				continue
			}
			p.mu.Lock()
			if p.dead || p.closing {
				p.mu.Unlock()
				transport.PutWireBuf(wb)
				continue
			}
			p.queue = append(p.queue, wb)
			p.cond.Signal()
			p.mu.Unlock()
		}
	}
}

// OnPeerFailure registers the callback invoked (at most once per peer, from
// a writer goroutine) when that peer's retry budget or deadline is
// exhausted. Implements transport.FailureNotifier.
func (c *Conn) OnPeerFailure(cb func(transport.PeerError)) {
	c.errMu.Lock()
	c.onFail = cb
	c.errMu.Unlock()
}

func (c *Conn) notifyPeerFailure(pe transport.PeerError) {
	if c.killed.Load() {
		return // our own teardown, not a remote failure
	}
	c.errMu.Lock()
	cb := c.onFail
	c.errMu.Unlock()
	if cb != nil {
		cb(pe)
	}
}

// Kill tears the endpoint down instantly — no drain, no goodbye frames —
// exactly as SIGKILL would: every socket and the listener close, queued
// frames are discarded, and subsequent Sends fail. Peers observe the death
// through their own detectors (read resets, heartbeat silence, exhausted
// redial budgets). Implements transport.Killer for fault-injection tests.
func (c *Conn) Kill() {
	c.killed.Store(true)
	c.closeOnce.Do(func() {
		close(c.closed)
		for _, p := range c.peers {
			if p == nil {
				continue
			}
			p.mu.Lock()
			p.closing = true
			p.dead = true
			if p.err == nil {
				p.err = &transport.PeerError{Rank: p.rank, Phase: transport.PhaseClose,
					Err: errors.New("transport killed")}
			}
			for _, wb := range p.queue {
				transport.PutWireBuf(wb)
			}
			p.queue = nil
			p.conn = nil
			p.cond.Broadcast()
			p.mu.Unlock()
		}
		if c.listener != nil {
			c.listener.Close()
		}
		if c.rendezvousLn != nil {
			c.rendezvousLn.Close()
		}
		c.connsMu.Lock()
		for conn := range c.conns {
			conn.Close()
		}
		c.conns = nil
		c.connsMu.Unlock()
		c.beatWG.Wait()
	})
}

// ResetPeers forces every established connection to be recycled WITHOUT
// marking any peer dead — the transient-blip fault (transport.Resetter).
// Each socket's write side is shut down (half-close): bytes already
// accepted by the kernel still flush, the remote reader consumes them and
// then sees a clean EOF, drops the connection, and both sides redial within
// the normal retry budget. Half-close rather than full close is what makes
// the fault survivable-by-construction: a full close would destroy inbound
// frames sitting in the local receive buffer — frames the peer's write
// accounting already counted as delivered, so nothing would ever resend
// them and the next collective would hang. (A fault that loses
// acknowledged frames is a peer death, not a reset; inject that with
// Kill.) Only an exhausted retry budget — never the reset itself —
// surfaces as a peer failure.
func (c *Conn) ResetPeers() {
	select {
	case <-c.closed:
		return // already torn down; nothing to reset
	default:
	}
	// Detach each peer's canonical write connection first so writers redial
	// instead of queueing more writes onto a socket that is about to refuse
	// them.
	for _, p := range c.peers {
		if p == nil {
			continue
		}
		p.mu.Lock()
		p.conn = nil
		p.mu.Unlock()
	}
	c.connsMu.Lock()
	conns := make([]net.Conn, 0, len(c.conns))
	for conn := range c.conns {
		conns = append(conns, conn)
	}
	c.connsMu.Unlock()
	for _, conn := range conns {
		// The socket stays tracked and its read side stays open: inbound
		// frames keep draining until the peer reacts to the EOF, closes its
		// end, and our reader drops the connection (dropConn unregisters
		// it). Close and Kill can still tear it down meanwhile.
		if cw, ok := conn.(interface{ CloseWrite() error }); ok {
			cw.CloseWrite()
		} else {
			// Injected test dials may not be TCP; a full close is the best
			// available approximation there.
			c.untrack(conn)
			conn.Close()
		}
	}
}

var (
	_ transport.FailureNotifier = (*Conn)(nil)
	_ transport.Killer          = (*Conn)(nil)
	_ transport.Resetter        = (*Conn)(nil)
)

// Rank returns this endpoint's rank.
func (c *Conn) Rank() int { return c.cfg.Rank }

// Size returns the world size.
func (c *Conn) Size() int { return c.cfg.Size }

// Err returns the first transport failure observed, if any.
func (c *Conn) Err() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.err
}

func (c *Conn) fail(err error) {
	c.errMu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.errMu.Unlock()
}

// Stats returns real wire byte counts (frame headers included).
func (c *Conn) Stats() transport.Stats {
	return transport.Stats{
		FramesSent: c.framesSent.Load(),
		FramesRecv: c.framesRecv.Load(),
		BytesSent:  c.bytesSent.Load(),
		BytesRecv:  c.bytesRecv.Load(),
		Wire:       true,
	}
}

// FramesByKind returns the per-wire-kind frame and byte counters.
// Implements transport.KindStatser; safe to call concurrently with traffic
// (telemetry scrapes it from the HTTP goroutine).
func (c *Conn) FramesByKind() transport.KindStats {
	var ks transport.KindStats
	for k := 0; k < transport.NumKinds; k++ {
		ks.Sent[k] = c.sentKind[k].Load()
		ks.Recv[k] = c.recvKind[k].Load()
		ks.SentBytes[k] = c.sentKindBytes[k].Load()
		ks.RecvBytes[k] = c.recvKindBytes[k].Load()
	}
	return ks
}

// CompressionStats returns the cumulative payload bytes that entered the
// compressor vs what was actually framed, counted only for frames that
// shipped compressed. Implements transport.CompressionStatser.
func (c *Conn) CompressionStats() (raw, wire int64) {
	return c.compRaw.Load(), c.compWire.Load()
}

// LastHeard returns the time any frame (data, hello, or heartbeat) was last
// read from rank, or the zero time if never (and always for the own rank).
// Implements transport.LivenessStatser.
func (c *Conn) LastHeard(rank int) time.Time {
	if rank < 0 || rank >= len(c.lastHeard) {
		return time.Time{}
	}
	ns := c.lastHeard[rank].Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

var (
	_ transport.KindStatser        = (*Conn)(nil)
	_ transport.LivenessStatser    = (*Conn)(nil)
	_ transport.MeteredSender      = (*Conn)(nil)
	_ transport.CompressionStatser = (*Conn)(nil)
)

// Send serializes the payload and enqueues it toward dst. Self-sends loop
// back through the codec (an encode/decode round trip) so semantics match
// remote delivery exactly.
func (c *Conn) Send(dst, tag int, payload any) error {
	_, err := c.send(dst, tag, payload)
	return err
}

// SendMetered behaves exactly like Send and additionally returns the exact
// number of bytes the frame occupies on the wire — the post-compression
// serialized size, length prefix and header included; 0 for self-sends.
// Implements transport.MeteredSender.
func (c *Conn) SendMetered(dst, tag int, payload any) (int64, error) {
	return c.send(dst, tag, payload)
}

// compressTo reports whether data frames toward dst may travel compressed:
// both this rank and dst advertised FlagCompress (at bootstrap or at
// admission for joiners).
func (c *Conn) compressTo(dst int) bool {
	if !c.cfg.Compress || dst >= len(c.peerFlags) {
		return false
	}
	c.addrMu.RLock()
	f := c.peerFlags[dst]
	c.addrMu.RUnlock()
	return f&transport.FlagCompress != 0
}

// frameWireOffset is where the payload section starts inside a marshalled
// frame: the u32 length prefix plus the 17-byte header.
const frameWireOffset = 4 + 17

func (c *Conn) send(dst, tag int, payload any) (int64, error) {
	if dst < 0 || dst >= c.cfg.capacity() {
		return 0, fmt.Errorf("tcp: Send: rank %d out of range [0,%d)", dst, c.cfg.capacity())
	}
	if err := c.Err(); err != nil {
		// A peer-scoped failure poisons only sends toward that peer (checked
		// below); whole-transport failures poison everything.
		if _, isPeer := transport.AsPeerError(err); !isPeer {
			return 0, fmt.Errorf("tcp: Send to rank %d: transport already failed: %w", dst, err)
		}
	}
	select {
	case <-c.closed:
		return 0, fmt.Errorf("tcp: Send to rank %d: transport closed", dst)
	default:
	}
	if dst == c.cfg.Rank {
		// Self-send: loop back through the codec (an encode/decode round
		// trip, so semantics match remote delivery exactly) using a pooled
		// buffer for the transient encoding. Never touches a wire, so the
		// metered size is 0.
		wb := transport.GetWireBuf()
		enc, err := transport.AppendPayload(wb.B[:0], payload)
		wb.B = enc
		if err != nil {
			transport.PutWireBuf(wb)
			return 0, fmt.Errorf("tcp: Send to rank %d: %w", dst, err)
		}
		v, derr := transport.DecodePayload(enc)
		transport.PutWireBuf(wb)
		if derr != nil {
			return 0, fmt.Errorf("tcp: self-send round trip: %w", derr)
		}
		kind := transport.DataKindFor(payload)
		c.framesSent.Add(1)
		c.framesRecv.Add(1)
		c.sentKind[kind].Add(1)
		c.recvKind[kind].Add(1)
		c.handler(transport.Frame{Src: dst, Dst: dst, Tag: tag, Payload: v})
		return 0, nil
	}
	// Serialize straight into a pooled buffer — payload encoding and frame
	// header in one pass, no intermediate payload slice. The buffer travels
	// through the peer's writer queue and returns to the pool once written.
	wb := transport.GetWireBuf()
	buf, err := transport.AppendDataFrame(wb.B[:0], int32(c.cfg.Rank), int32(dst), int64(tag), payload)
	wb.B = buf
	if err != nil {
		transport.PutWireBuf(wb)
		return 0, fmt.Errorf("tcp: Send to rank %d: %w", dst, err)
	}
	// Compression happens here, synchronously, rather than in the writer
	// goroutine: the frame's final wire size must be known when SendMetered
	// returns, and the scheduler's accounting relies on that exactness.
	// Eligibility: negotiated with dst, sample-batch payload ([]byte), and
	// a payload section large enough to beat the codec overhead.
	if pb, ok := payload.([]byte); ok && len(pb) >= minCompressPayload && c.compressTo(dst) {
		zb := transport.GetWireBuf()
		z := append(zb.B[:0], wb.B[:frameWireOffset]...)
		z[4] = transport.KindDataZ
		z = wirecomp.Encode(z, wb.B[frameWireOffset:])
		zb.B = z
		if len(z) < len(wb.B) {
			binary.LittleEndian.PutUint32(z, uint32(len(z)-4))
			c.compRaw.Add(int64(len(wb.B) - frameWireOffset))
			c.compWire.Add(int64(len(z) - frameWireOffset))
			transport.PutWireBuf(wb)
			wb = zb
		} else {
			// Incompressible payload: ship the plain frame.
			transport.PutWireBuf(zb)
		}
	}
	wire := int64(len(wb.B))
	p := c.peers[dst]
	p.mu.Lock()
	if p.dead {
		pe := p.err
		p.mu.Unlock()
		transport.PutWireBuf(wb)
		if pe != nil {
			return 0, fmt.Errorf("tcp: Send to rank %d: %w", dst, pe)
		}
		return 0, &transport.PeerError{Rank: dst, Phase: transport.PhaseSend}
	}
	if p.closing {
		p.mu.Unlock()
		transport.PutWireBuf(wb)
		return 0, fmt.Errorf("tcp: Send to rank %d: transport closing", dst)
	}
	p.queue = append(p.queue, wb)
	p.cond.Signal()
	p.mu.Unlock()
	return wire, nil
}

// Close drains the outbound queues (bounded by DrainTimeout), tears down
// connections, and returns the first transport failure observed during the
// connection's lifetime, if any.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		// Ask writers to finish their queues, then stop.
		for _, p := range c.peers {
			if p == nil {
				continue
			}
			p.mu.Lock()
			p.closing = true
			p.cond.Broadcast()
			p.mu.Unlock()
		}
		drained := make(chan struct{})
		go func() { c.writerWG.Wait(); close(drained) }()
		select {
		case <-drained:
		case <-time.After(c.cfg.DrainTimeout):
			c.fail(fmt.Errorf("tcp: rank %d: close: outbound queues not drained within %v", c.cfg.Rank, c.cfg.DrainTimeout))
		}
		close(c.closed)
		c.beatWG.Wait()
		if c.listener != nil {
			c.listener.Close()
		}
		if c.rendezvousLn != nil {
			c.rendezvousLn.Close()
		}
		for _, p := range c.peers {
			if p == nil {
				continue
			}
			p.mu.Lock()
			p.conn = nil
			p.cond.Broadcast()
			p.mu.Unlock()
		}
		c.connsMu.Lock()
		for conn := range c.conns {
			conn.Close()
		}
		c.conns = nil
		c.connsMu.Unlock()
		// Readers exit once their connections close.
		c.readerWG.Wait()
	})
	return c.Err()
}

// --- bootstrap ---

func (c *Conn) bootstrap(advertise string) error {
	deadline := time.Now().Add(c.cfg.BootstrapTimeout)
	if c.cfg.Rank == 0 {
		return c.bootstrapRoot(advertise, deadline)
	}
	return c.bootstrapPeer(advertise, deadline)
}

// bootstrapRoot collects every peer's hello on the rendezvous listener and
// answers with the full rank↔address table. Connections that drop or send
// garbage before completing a hello are skipped, not fatal: the peer side
// retries the whole round, so a flaky network just costs a backoff step. A
// second hello from the same rank replaces the first connection (the peer
// evidently lost the previous round before receiving the table).
func (c *Conn) bootstrapRoot(advertise string, deadline time.Time) error {
	ln := c.cfg.RendezvousListener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", c.cfg.Rendezvous)
		if err != nil {
			return fmt.Errorf("tcp: rank 0: binding rendezvous %s: %w", c.cfg.Rendezvous, err)
		}
	}
	// An elastic world (MaxSize > Size) keeps the rendezvous open after
	// bootstrap so late joiners can rendezvous mid-run; joinAcceptLoop takes
	// it over, and Close/Kill tear it down.
	keepOpen := c.cfg.capacity() > c.cfg.Size
	defer func() {
		if keepOpen {
			if tl, ok := ln.(*net.TCPListener); ok {
				tl.SetDeadline(time.Time{})
			}
			c.rendezvousLn = ln
		} else {
			ln.Close()
		}
	}()
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}

	// Tables are sized by the full rank name space; latent joiner slots
	// stay empty until admission.
	addrs := make([]string, c.cfg.capacity())
	addrs[0] = advertise
	flags := make([]byte, c.cfg.capacity())
	flags[0] = c.cfg.capabilityFlags()
	conns := make([]net.Conn, c.cfg.Size) // per-rank hello connection
	defer func() {
		for _, conn := range conns {
			if conn != nil {
				conn.Close()
			}
		}
	}()
	seen := 0
	for seen < c.cfg.Size-1 {
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("tcp: rank 0: rendezvous accept (have %d/%d hellos): %w", seen, c.cfg.Size-1, err)
		}
		conn.SetDeadline(deadline)
		f, _, err := transport.ReadFrame(conn)
		if err != nil || f.Kind != transport.KindHello {
			conn.Close() // dropped or garbled dial; the peer retries
			continue
		}
		r := int(f.Src)
		if r <= 0 || r >= c.cfg.Size {
			conn.Close()
			continue
		}
		if conns[r] != nil {
			// The peer retried after losing its previous round; the newer
			// connection supersedes the stale one.
			conns[r].Close()
		} else {
			seen++
		}
		addrs[r], flags[r] = transport.DecodeHello(f.Payload)
		conns[r] = conn
	}
	table, err := transport.MarshalFrame(transport.WireFrame{
		Kind:    transport.KindTable,
		Src:     0,
		Dst:     -1,
		Payload: transport.EncodePeerTable(addrs, flags),
	})
	if err != nil {
		return err
	}
	for _, conn := range conns {
		if conn == nil {
			continue
		}
		if _, err := conn.Write(table); err != nil {
			return fmt.Errorf("tcp: rank 0: sending rendezvous table: %w", err)
		}
	}
	c.addrs = addrs
	c.peerFlags = flags
	return nil
}

// bootstrapPeer performs the rendezvous round — dial, announce the data
// address, wait for the table — retrying the whole round with backoff
// until the deadline. Retrying the full round (not just the dial) is what
// lets a rank survive a flaky rendezvous: a listener that accepts and then
// drops the connection just costs one backoff step.
func (c *Conn) bootstrapPeer(advertise string, deadline time.Time) error {
	hello, err := transport.MarshalFrame(transport.WireFrame{
		Kind:    transport.KindHello,
		Src:     int32(c.cfg.Rank),
		Dst:     0,
		Payload: transport.EncodeHello(advertise, c.cfg.capabilityFlags()),
	})
	if err != nil {
		return err
	}
	backoff := c.cfg.DialBackoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if time.Now().Add(backoff).After(deadline) {
				return fmt.Errorf("tcp: rank %d: rendezvous %s failed within %v: %w",
					c.cfg.Rank, c.cfg.Rendezvous, c.cfg.BootstrapTimeout, lastErr)
			}
			time.Sleep(backoff)
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
		}
		addrs, flags, err := c.rendezvousRound(hello, deadline)
		if err != nil {
			lastErr = err
			continue
		}
		c.addrs = addrs
		c.peerFlags = flags
		return nil
	}
}

// rendezvousRound is one attempt of the peer side of the bootstrap.
func (c *Conn) rendezvousRound(hello []byte, deadline time.Time) ([]string, []byte, error) {
	conn, err := c.cfg.Dial(c.cfg.Rendezvous, c.cfg.DialTimeout)
	if err != nil {
		return nil, nil, fmt.Errorf("dialing rendezvous: %w", err)
	}
	defer conn.Close()
	conn.SetDeadline(deadline)
	if _, err := conn.Write(hello); err != nil {
		return nil, nil, fmt.Errorf("sending rendezvous hello: %w", err)
	}
	f, _, err := transport.ReadFrame(conn)
	if err != nil {
		return nil, nil, fmt.Errorf("reading rendezvous table: %w", err)
	}
	if f.Kind != transport.KindTable {
		return nil, nil, fmt.Errorf("rendezvous answered with frame kind %d, want table", f.Kind)
	}
	addrs, flags, err := transport.DecodePeerTable(f.Payload)
	if err != nil {
		return nil, nil, fmt.Errorf("decoding rendezvous table: %w", err)
	}
	if len(addrs) != c.cfg.capacity() {
		return nil, nil, fmt.Errorf("rendezvous table has %d entries, want %d", len(addrs), c.cfg.capacity())
	}
	return addrs, flags, nil
}

// --- elastic join (DESIGN.md §15) ---

// OnJoinRequest registers the callback invoked once per joiner the
// rendezvous admits (rank 0 of an elastic world only; other ranks never
// fire it). Joins that arrived before registration are flushed to the
// callback immediately. Implements transport.JoinNotifier.
func (c *Conn) OnJoinRequest(cb func(transport.JoinRequest)) {
	c.errMu.Lock()
	c.onJoin = cb
	pending := c.pendingJoins
	c.pendingJoins = nil
	c.errMu.Unlock()
	for _, jr := range pending {
		cb(jr)
	}
}

func (c *Conn) notifyJoin(jr transport.JoinRequest) {
	c.errMu.Lock()
	cb := c.onJoin
	if cb == nil {
		c.pendingJoins = append(c.pendingJoins, jr)
	}
	c.errMu.Unlock()
	if cb != nil {
		cb(jr)
	}
}

// AdmitPeer records a joiner's data address and capability flags so traffic
// toward its slot dials like any bootstrap-time peer. Every running member
// calls it when the join protocol announces the new rank. Implements
// transport.PeerAdmitter.
func (c *Conn) AdmitPeer(rank int, addr string, flags byte) error {
	if rank == c.cfg.Rank {
		return nil
	}
	if rank < 0 || rank >= c.cfg.capacity() {
		return fmt.Errorf("tcp: AdmitPeer: rank %d out of capacity [0,%d)", rank, c.cfg.capacity())
	}
	if addr == "" {
		return fmt.Errorf("tcp: AdmitPeer: empty address for rank %d", rank)
	}
	c.addrMu.Lock()
	c.addrs[rank] = addr
	c.peerFlags[rank] = flags
	c.addrMu.Unlock()
	return nil
}

var (
	_ transport.PeerAdmitter = (*Conn)(nil)
	_ transport.JoinNotifier = (*Conn)(nil)
)

// joinAcceptLoop answers mid-run rendezvous hellos on rank 0 of an elastic
// world: a joiner announces itself with Src == -1, receives the next free
// slot and the current peer table, and is surfaced through OnJoinRequest.
// The joiner is NOT yet a member — the upper layers decide when (and
// whether) to admit it into the collective group.
func (c *Conn) joinAcceptLoop() {
	defer c.readerWG.Done()
	ln := c.rendezvousLn
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed by Close/Kill
		}
		c.track(conn)
		c.readerWG.Add(1)
		go func(conn net.Conn) {
			defer c.readerWG.Done()
			defer func() {
				c.untrack(conn)
				conn.Close()
			}()
			conn.SetDeadline(time.Now().Add(c.cfg.BootstrapTimeout))
			f, _, err := transport.ReadFrame(conn)
			if err != nil || f.Kind != transport.KindHello || f.Src != -1 {
				return // not a joiner hello; drop
			}
			addr, fl := transport.DecodeHello(f.Payload)
			if addr == "" {
				return
			}
			c.addrMu.Lock()
			if c.nextJoin >= c.cfg.capacity() {
				c.addrMu.Unlock()
				return // world full; the joiner times out and gives up
			}
			r := c.nextJoin
			c.nextJoin++
			c.addrs[r] = addr
			c.peerFlags[r] = fl
			table := transport.EncodePeerTable(c.addrs, c.peerFlags)
			c.addrMu.Unlock()
			reply, err := transport.MarshalFrame(transport.WireFrame{
				Kind:    transport.KindTable,
				Src:     int32(c.cfg.Rank),
				Dst:     int32(r), // the assigned slot rides the Dst field
				Payload: table,
			})
			if err == nil {
				_, err = conn.Write(reply)
			}
			if err != nil {
				// The joiner never learned its slot; roll the assignment back
				// when it is still the newest so a retry doesn't leak slots
				// (and never surface a ghost join).
				c.addrMu.Lock()
				if c.nextJoin == r+1 {
					c.nextJoin = r
					c.addrs[r] = ""
					c.peerFlags[r] = 0
				}
				c.addrMu.Unlock()
				return
			}
			c.notifyJoin(transport.JoinRequest{Rank: r, Addr: addr, Flags: fl})
		}(conn)
	}
}

// bootstrapJoin is the joiner side of the mid-run rendezvous: dial, send a
// Src == -1 hello advertising the data listener, adopt the assigned slot
// and peer table from the reply. Retries the whole round with backoff, like
// the bootstrap-time peer rendezvous.
func (c *Conn) bootstrapJoin(advertise string) error {
	deadline := time.Now().Add(c.cfg.BootstrapTimeout)
	hello, err := transport.MarshalFrame(transport.WireFrame{
		Kind:    transport.KindHello,
		Src:     -1,
		Dst:     0,
		Payload: transport.EncodeHello(advertise, c.cfg.capabilityFlags()),
	})
	if err != nil {
		return err
	}
	backoff := c.cfg.DialBackoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if time.Now().Add(backoff).After(deadline) {
				return fmt.Errorf("tcp: join via %s failed within %v: %w",
					c.cfg.Rendezvous, c.cfg.BootstrapTimeout, lastErr)
			}
			time.Sleep(backoff)
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
		}
		conn, err := c.cfg.Dial(c.cfg.Rendezvous, c.cfg.DialTimeout)
		if err != nil {
			lastErr = fmt.Errorf("dialing rendezvous: %w", err)
			continue
		}
		conn.SetDeadline(deadline)
		if _, err := conn.Write(hello); err != nil {
			conn.Close()
			lastErr = fmt.Errorf("sending join hello: %w", err)
			continue
		}
		f, _, err := transport.ReadFrame(conn)
		conn.Close()
		if err != nil {
			lastErr = fmt.Errorf("reading join table: %w", err)
			continue
		}
		if f.Kind != transport.KindTable || f.Dst < 0 {
			lastErr = fmt.Errorf("join answered with frame kind %d dst %d", f.Kind, f.Dst)
			continue
		}
		addrs, flags, err := transport.DecodePeerTable(f.Payload)
		if err != nil {
			lastErr = fmt.Errorf("decoding join table: %w", err)
			continue
		}
		if len(addrs) != c.cfg.capacity() {
			return fmt.Errorf("tcp: join table has %d entries, want capacity %d (mismatched -max-world?)",
				len(addrs), c.cfg.capacity())
		}
		if int(f.Dst) >= c.cfg.capacity() {
			return fmt.Errorf("tcp: join assigned rank %d beyond capacity %d", f.Dst, c.cfg.capacity())
		}
		c.cfg.Rank = int(f.Dst)
		c.cfg.Size = c.cfg.capacity()
		c.addrs = addrs
		c.peerFlags = flags
		return nil
	}
}

// --- data plane ---

// acceptLoop registers inbound peer connections (identified by their hello
// frame) and spawns a reader per connection.
func (c *Conn) acceptLoop() {
	defer c.readerWG.Done()
	for {
		conn, err := c.listener.Accept()
		if err != nil {
			select {
			case <-c.closed:
			default:
				c.fail(fmt.Errorf("tcp: rank %d: data accept: %w", c.cfg.Rank, err))
			}
			return
		}
		c.track(conn)
		c.readerWG.Add(1)
		go func(conn net.Conn) {
			defer c.readerWG.Done()
			conn.SetReadDeadline(time.Now().Add(c.cfg.BootstrapTimeout))
			f, _, err := transport.ReadFrame(conn)
			if err != nil || f.Kind != transport.KindHello {
				c.untrack(conn)
				conn.Close()
				return
			}
			r := int(f.Src)
			if r < 0 || r >= c.cfg.capacity() || r == c.cfg.Rank {
				c.untrack(conn)
				conn.Close()
				return
			}
			conn.SetReadDeadline(time.Time{})
			c.recvKind[transport.KindHello].Add(1)
			c.lastHeard[r].Store(time.Now().UnixNano())
			c.registerConn(r, conn)
			c.readLoop(r, conn)
		}(conn)
	}
}

// registerConn installs conn as the peer's write connection if it has none.
func (c *Conn) registerConn(rank int, conn net.Conn) {
	p := c.peers[rank]
	p.mu.Lock()
	if p.conn == nil && !p.closing {
		p.conn = conn
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// dropConn detaches conn from the peer if it is the current write
// connection, forcing the writer to redial.
func (c *Conn) dropConn(rank int, conn net.Conn) {
	p := c.peers[rank]
	p.mu.Lock()
	if p.conn == conn {
		p.conn = nil
	}
	p.mu.Unlock()
	c.untrack(conn)
	conn.Close()
}

// readLoop decodes inbound frames from one connection until it errors. One
// persistent frame buffer is reused across reads (ReadFrameInto); the frame
// payload aliasing it is consumed by DecodePayload before the next read, so
// the steady-state receive path allocates only the decoded value.
func (c *Conn) readLoop(rank int, conn net.Conn) {
	br := bufio.NewReaderSize(conn, 64<<10)
	var scratch []byte
	var zscratch []byte // decompression buffer, reused across KindDataZ frames
	for {
		if c.cfg.ReadIdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(c.cfg.ReadIdleTimeout))
		}
		f, n, err := transport.ReadFrameInto(br, &scratch)
		if err != nil {
			c.dropConn(rank, conn)
			return
		}
		c.bytesRecv.Add(int64(n))
		c.recvKind[f.Kind].Add(1)
		c.recvKindBytes[f.Kind].Add(int64(n))
		c.lastHeard[rank].Store(time.Now().UnixNano())
		switch f.Kind {
		case transport.KindData, transport.KindDataRef, transport.KindDataZ:
			if int(f.Dst) != c.cfg.Rank {
				continue // misrouted; drop
			}
			enc := f.Payload
			if f.Kind == transport.KindDataZ {
				dl, zerr := wirecomp.DecodedLen(f.Payload)
				if zerr == nil && dl > transport.MaxFramePayload {
					zerr = fmt.Errorf("decompressed payload %d exceeds frame limit", dl)
				}
				if zerr == nil {
					zscratch, zerr = wirecomp.Decode(zscratch[:0], f.Payload)
				}
				if zerr != nil {
					c.fail(fmt.Errorf("tcp: rank %d: compressed payload from rank %d: %w", c.cfg.Rank, f.Src, zerr))
					continue
				}
				enc = zscratch
			}
			v, derr := transport.DecodePayload(enc)
			if derr != nil {
				c.fail(fmt.Errorf("tcp: rank %d: payload from rank %d: %w", c.cfg.Rank, f.Src, derr))
				continue
			}
			c.framesRecv.Add(1)
			c.handler(transport.Frame{Src: int(f.Src), Dst: int(f.Dst), Tag: int(f.Tag), Payload: v, Wire: int64(n)})
		case transport.KindBye:
			c.dropConn(rank, conn)
			return
		case transport.KindPing:
			// Liveness probe: the successful read is the signal; nothing to
			// deliver. (Byte accounting above already includes it.)
		default:
			// Control frames are not expected mid-stream; ignore.
		}
	}
}

// writeLoop drains one peer's queue. Each pass swaps out everything queued
// since the last write and pushes it in a single vectored write (writev), so
// many small frames queued during one compute phase cost one syscall — the
// flush-on-drain coalescing. On write failure the connection is redialed
// with exponential backoff up to the attempt budget; exhausting the budget
// marks the peer dead and records a wrapped error.
func (c *Conn) writeLoop(p *peer) {
	defer c.writerWG.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closing {
			p.cond.Wait()
		}
		if len(p.queue) == 0 && p.closing {
			p.mu.Unlock()
			return
		}
		batch := p.queue
		if p.spare != nil {
			p.queue = p.spare[:0]
			p.spare = nil
		} else {
			p.queue = nil
		}
		p.mu.Unlock()

		err := c.writeBatch(p, batch)
		for _, wb := range batch {
			if err == nil {
				c.framesSent.Add(1)
				c.bytesSent.Add(int64(len(wb.B)))
				// Byte 4 of the marshalled frame is the wire kind.
				if len(wb.B) > 4 && int(wb.B[4]) < transport.NumKinds {
					c.sentKind[wb.B[4]].Add(1)
					c.sentKindBytes[wb.B[4]].Add(int64(len(wb.B)))
				}
			}
			transport.PutWireBuf(wb)
		}
		if err == errPingsAbandonedOnClose {
			// Teardown overtook a liveness probe to a peer that is already
			// gone — at the end of a run the fastest rank closes first, and
			// its exit must not read as a failure to the ranks behind it.
			p.mu.Lock()
			for _, wb := range p.queue {
				transport.PutWireBuf(wb)
			}
			p.queue = nil
			p.mu.Unlock()
			return
		}
		if err != nil {
			pe, ok := transport.AsPeerError(err)
			if !ok {
				pe = &transport.PeerError{Rank: p.rank, Phase: transport.PhaseSend, Err: err}
			}
			c.fail(err)
			p.mu.Lock()
			p.dead = true
			p.err = pe
			for _, wb := range p.queue {
				transport.PutWireBuf(wb)
			}
			p.queue = nil
			p.mu.Unlock()
			c.notifyPeerFailure(*pe)
			return
		}
		clear(batch)
		p.mu.Lock()
		if p.spare == nil {
			p.spare = batch[:0]
		}
		p.mu.Unlock()
	}
}

// errPingsAbandonedOnClose reports that a retried batch consisted solely of
// liveness probes and the local endpoint began closing: the pings are
// dropped rather than pressed through the retry budget, because a peer that
// stopped answering while we ourselves are tearing down is almost always a
// peer that finished the run and exited first, not a failure.
var errPingsAbandonedOnClose = errors.New("tcp: closing: undelivered liveness probes abandoned")

// pingsOnly reports whether every marshalled frame in the batch is a
// KindPing probe (the wire kind is byte 4, after the length prefix).
func pingsOnly(batch []*transport.WireBuf) bool {
	for _, wb := range batch {
		if len(wb.B) <= 4 || wb.B[4] != transport.KindPing {
			return false
		}
	}
	return true
}

// writeBatch writes a run of marshalled frames to the peer as one vectored
// write, establishing or re-establishing the connection as needed. On a
// partial write the connection is dropped (the receiver discards the
// truncated frame with it) and the batch is resent from the first frame not
// fully written — the same at-least-once contract as per-frame retries.
func (c *Conn) writeBatch(p *peer, batch []*transport.WireBuf) error {
	done := 0 // frames fully written
	backoff := c.cfg.DialBackoff
	deadline := time.Now().Add(c.cfg.RetryTimeout)
	phase := transport.PhaseDial // no connection ever established this batch
	var lastErr error
	attempt := 0
	for ; attempt < c.cfg.DialAttempts; attempt++ {
		if c.killed.Load() {
			return &transport.PeerError{Rank: p.rank, Phase: transport.PhaseClose,
				Err: errors.New("transport killed")}
		}
		if attempt > 0 {
			p.mu.Lock()
			closing := p.closing
			p.mu.Unlock()
			if closing && pingsOnly(batch[done:]) {
				return errPingsAbandonedOnClose
			}
			if time.Now().Add(backoff).After(deadline) {
				return &transport.PeerError{Rank: p.rank, Phase: phase,
					Err: fmt.Errorf("tcp: rank %d: sending to rank %d failed after %d attempts (retry deadline %v exceeded): %w",
						c.cfg.Rank, p.rank, attempt, c.cfg.RetryTimeout, lastErr)}
			}
			time.Sleep(backoff)
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
		}
		conn, err := c.peerConn(p)
		if err != nil {
			lastErr = err
			continue
		}
		phase = transport.PhaseSend
		p.iov = p.iov[:0]
		for _, wb := range batch[done:] {
			p.iov = append(p.iov, wb.B)
		}
		iov := p.iov // WriteTo advances its receiver; keep p.iov's header intact
		conn.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout))
		n, err := iov.WriteTo(conn)
		clear(p.iov) // drop buffer refs; the backing array is reused next pass
		if err == nil {
			conn.SetWriteDeadline(time.Time{})
			return nil
		}
		lastErr = err
		for done < len(batch) && n >= int64(len(batch[done].B)) {
			n -= int64(len(batch[done].B))
			done++
		}
		c.dropConn(p.rank, conn)
	}
	return &transport.PeerError{Rank: p.rank, Phase: phase,
		Err: fmt.Errorf("tcp: rank %d: sending to rank %d failed after %d attempts: %w",
			c.cfg.Rank, p.rank, attempt, lastErr)}
}

// peerConn returns the peer's current connection, dialing its data
// listener (and identifying ourselves with a hello frame) if none exists.
func (c *Conn) peerConn(p *peer) (net.Conn, error) {
	p.mu.Lock()
	if p.conn != nil {
		conn := p.conn
		p.mu.Unlock()
		return conn, nil
	}
	p.mu.Unlock()

	c.addrMu.RLock()
	addr := c.addrs[p.rank]
	c.addrMu.RUnlock()
	if addr == "" {
		return nil, fmt.Errorf("rank %d not admitted (no address)", p.rank)
	}
	conn, err := c.cfg.Dial(addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	c.track(conn)
	hello, err := transport.MarshalFrame(transport.WireFrame{
		Kind: transport.KindHello,
		Src:  int32(c.cfg.Rank),
		Dst:  int32(p.rank),
	})
	if err != nil {
		c.untrack(conn)
		conn.Close()
		return nil, err
	}
	conn.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout))
	if _, err := conn.Write(hello); err != nil {
		c.untrack(conn)
		conn.Close()
		return nil, fmt.Errorf("hello to %s: %w", addr, err)
	}
	conn.SetWriteDeadline(time.Time{})
	c.bytesSent.Add(int64(len(hello)))
	c.sentKind[transport.KindHello].Add(1)

	p.mu.Lock()
	if p.conn != nil {
		// An inbound connection raced us; keep the one canonical connection
		// for writes and discard ours.
		existing := p.conn
		p.mu.Unlock()
		c.untrack(conn)
		conn.Close()
		return existing, nil
	}
	p.conn = conn
	p.mu.Unlock()

	c.readerWG.Add(1)
	go func() {
		defer c.readerWG.Done()
		c.readLoop(p.rank, conn)
	}()
	return conn, nil
}

var _ transport.Conn = (*Conn)(nil)

// ErrClosed reports whether err stems from using a closed transport.
func ErrClosed(err error) bool {
	return err != nil && errors.Is(err, net.ErrClosed)
}
