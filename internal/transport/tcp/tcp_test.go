package tcp

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"plshuffle/internal/transport"
)

// startWorld forms an n-rank TCP world inside this process. Frames delivered
// to rank r land on the returned channel inbox[r]. mutate, when non-nil,
// adjusts each rank's Config before New (fault injection hooks live there).
func startWorld(t *testing.T, n int, mutate func(rank int, cfg *Config)) ([]*Conn, []chan transport.Frame) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserving rendezvous: %v", err)
	}
	rendezvous := ln.Addr().String()

	conns := make([]*Conn, n)
	inbox := make([]chan transport.Frame, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		inbox[r] = make(chan transport.Frame, 4096)
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			cfg := Config{
				Rank:             rank,
				Size:             n,
				Rendezvous:       rendezvous,
				BootstrapTimeout: 20 * time.Second,
			}
			if rank == 0 {
				cfg.RendezvousListener = ln
			}
			if mutate != nil {
				mutate(rank, &cfg)
			}
			ch := inbox[rank]
			conns[rank], errs[rank] = New(cfg, func(f transport.Frame) { ch <- f })
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: New: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	})
	return conns, inbox
}

// recvN drains n frames from ch or fails the test after a timeout.
func recvN(t *testing.T, ch <-chan transport.Frame, n int) []transport.Frame {
	t.Helper()
	out := make([]transport.Frame, 0, n)
	deadline := time.After(15 * time.Second)
	for len(out) < n {
		select {
		case f := <-ch:
			out = append(out, f)
		case <-deadline:
			t.Fatalf("received %d/%d frames before timeout", len(out), n)
		}
	}
	return out
}

// flakyListener drops (closes immediately after accept) the first `drops`
// connections, simulating a rendezvous endpoint that keeps losing dials.
type flakyListener struct {
	net.Listener
	drops int32
}

func (l *flakyListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	if atomic.AddInt32(&l.drops, -1) >= 0 {
		conn.Close()
	}
	return conn, nil
}

func TestBootstrapSurvivesFlakyRendezvous(t *testing.T) {
	t.Parallel()
	// Rank 0's rendezvous listener drops the first three accepted
	// connections; peers must retry the full round and still form the world.
	conns, inbox := startWorld(t, 3, func(rank int, cfg *Config) {
		cfg.DialBackoff = time.Millisecond
		if rank == 0 {
			cfg.RendezvousListener = &flakyListener{Listener: cfg.RendezvousListener, drops: 3}
		}
	})
	for r := 1; r < 3; r++ {
		if err := conns[r].Send(0, 7, []int{r}); err != nil {
			t.Fatalf("rank %d send: %v", r, err)
		}
	}
	got := recvN(t, inbox[0], 2)
	seen := map[int]bool{}
	for _, f := range got {
		seen[f.Src] = true
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("rank 0 heard from %v, want ranks 1 and 2", seen)
	}
}

func TestBootstrapSurvivesFlakyDial(t *testing.T) {
	t.Parallel()
	// Every non-root rank's first two dials fail outright.
	conns, inbox := startWorld(t, 2, func(rank int, cfg *Config) {
		cfg.DialBackoff = time.Millisecond
		if rank != 0 {
			var failures int32 = 2
			cfg.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
				if atomic.AddInt32(&failures, -1) >= 0 {
					return nil, fmt.Errorf("injected dial failure to %s", addr)
				}
				return net.DialTimeout("tcp", addr, timeout)
			}
		}
	})
	if err := conns[1].Send(0, 1, "hello"); err != nil {
		t.Fatal(err)
	}
	f := recvN(t, inbox[0], 1)[0]
	if f.Payload.(string) != "hello" || f.Src != 1 {
		t.Fatalf("unexpected frame %+v", f)
	}
}

func TestReconnectAfterDroppedConnection(t *testing.T) {
	t.Parallel()
	conns, inbox := startWorld(t, 2, func(rank int, cfg *Config) {
		cfg.DialBackoff = time.Millisecond
	})

	const batch = 50
	for i := 0; i < batch; i++ {
		if err := conns[0].Send(1, 0, i); err != nil {
			t.Fatal(err)
		}
	}
	first := recvN(t, inbox[1], batch)

	// Sever the established connection mid-exchange: grab rank 0's write
	// connection to rank 1 and close the socket under the transport.
	p := conns[0].peers[1]
	p.mu.Lock()
	live := p.conn
	p.mu.Unlock()
	if live == nil {
		t.Fatal("no established connection to sever")
	}
	live.Close()

	for i := batch; i < 2*batch; i++ {
		if err := conns[0].Send(1, 0, i); err != nil {
			t.Fatal(err)
		}
	}
	second := recvN(t, inbox[1], batch)

	all := append(first, second...)
	for i, f := range all {
		if f.Payload.(int) != i {
			t.Fatalf("frame %d: got payload %v (reconnect broke FIFO)", i, f.Payload)
		}
	}
	if err := conns[0].Err(); err != nil {
		t.Fatalf("transport recorded failure despite successful reconnect: %v", err)
	}
}

func TestResetPeersIsLossless(t *testing.T) {
	t.Parallel()
	// ResetPeers models a transient network blip: every established
	// connection is recycled, but no frame already handed to Send may be
	// lost and no peer may be declared dead. The half-close discipline is
	// what makes this safe — a full close would destroy inbound frames
	// sitting in the local receive buffer that the sender already counted
	// as delivered.
	var failures atomic.Int32
	conns, inbox := startWorld(t, 3, func(rank int, cfg *Config) {
		cfg.DialBackoff = time.Millisecond
	})
	for _, c := range conns {
		c.OnPeerFailure(func(transport.PeerError) { failures.Add(1) })
	}

	const rounds, perRound = 6, 40
	sent := 0
	for round := 0; round < rounds; round++ {
		for i := 0; i < perRound; i++ {
			for src := range conns {
				dst := (src + 1) % 3
				if err := conns[src].Send(dst, 0, sent*3+src); err != nil {
					t.Fatalf("round %d: rank %d send: %v", round, src, err)
				}
			}
			sent++
		}
		// Recycle every rank's connections mid-stream, including while
		// peers may still be draining the previous round.
		for _, c := range conns {
			c.ResetPeers()
		}
	}

	// Each rank receives rounds*perRound frames from its single upstream
	// neighbour, in FIFO order despite the resets.
	for dst := range conns {
		src := (dst + 2) % 3
		got := recvN(t, inbox[dst], rounds*perRound)
		for i, f := range got {
			if f.Src != src {
				t.Fatalf("rank %d frame %d: src %d, want %d", dst, i, f.Src, src)
			}
			if want := i*3 + src; f.Payload.(int) != want {
				t.Fatalf("rank %d frame %d: payload %v, want %d (reset broke FIFO)", dst, i, f.Payload, want)
			}
		}
	}
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d peer-failure notifications fired for a survivable reset", n)
	}
	for r, c := range conns {
		if err := c.Err(); err != nil {
			t.Fatalf("rank %d recorded failure despite lossless resets: %v", r, err)
		}
	}
}

func TestResetPeersAfterCloseIsNoop(t *testing.T) {
	t.Parallel()
	conns, _ := startWorld(t, 2, nil)
	if err := conns[0].Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	conns[0].ResetPeers() // must not panic or resurrect dial loops
}

func TestRetryBudgetExhaustedFailsFast(t *testing.T) {
	t.Parallel()
	conns, _ := startWorld(t, 2, func(rank int, cfg *Config) {
		cfg.DialBackoff = time.Millisecond
		cfg.DialAttempts = 3
		cfg.DialTimeout = 200 * time.Millisecond
	})

	// Kill rank 1 outright: its listener and every socket close, so rank 0's
	// redials are refused.
	if err := conns[1].Close(); err != nil {
		t.Fatalf("closing rank 1: %v", err)
	}
	if err := conns[0].Send(1, 0, 42); err != nil {
		t.Fatalf("eager send must enqueue even while the peer is down: %v", err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for conns[0].Err() == nil && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	err := conns[0].Err()
	if err == nil {
		t.Fatal("transport never surfaced a failure after the retry budget")
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("error does not mention the exhausted attempt budget: %v", err)
	}
	if serr := conns[0].Send(1, 0, 43); serr == nil {
		t.Fatal("Send succeeded after the transport failed")
	}
	if cerr := conns[0].Close(); cerr == nil {
		t.Fatal("Close returned nil after a recorded transport failure")
	}
}

func TestWriteRetryRespectsTotalDeadline(t *testing.T) {
	t.Parallel()
	// A huge attempt budget must still be cut short by RetryTimeout: the
	// total deadline, not the per-attempt count, bounds how long a dead peer
	// can wedge the writer.
	conns, _ := startWorld(t, 2, func(rank int, cfg *Config) {
		cfg.DialAttempts = 1 << 20
		cfg.DialBackoff = 20 * time.Millisecond
		cfg.DialTimeout = 200 * time.Millisecond
		cfg.RetryTimeout = 300 * time.Millisecond
	})
	if err := conns[1].Close(); err != nil {
		t.Fatalf("closing rank 1: %v", err)
	}
	start := time.Now()
	if err := conns[0].Send(1, 0, 42); err != nil {
		t.Fatalf("eager send must enqueue even while the peer is down: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for conns[0].Err() == nil && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	err := conns[0].Err()
	if err == nil {
		t.Fatal("transport never surfaced a failure despite the retry deadline")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("failure took %v to surface; RetryTimeout was 300ms", elapsed)
	}
	if !strings.Contains(err.Error(), "retry deadline") {
		t.Fatalf("error does not mention the retry deadline: %v", err)
	}
	pe, ok := transport.AsPeerError(err)
	if !ok || pe.Rank != 1 {
		t.Fatalf("recorded error is not a PeerError for rank 1: %v", err)
	}
}

func TestPeerDeathIsScopedAndNotified(t *testing.T) {
	t.Parallel()
	// Rank 2 dies; rank 0 must (a) get an OnPeerFailure callback naming rank
	// 2, (b) fail sends toward rank 2 with a PeerError, and (c) keep
	// exchanging traffic with rank 1 — peer death is scoped, not a
	// whole-transport poison.
	conns, inbox := startWorld(t, 3, func(rank int, cfg *Config) {
		cfg.DialBackoff = time.Millisecond
		cfg.DialAttempts = 3
		cfg.DialTimeout = 200 * time.Millisecond
	})
	failed := make(chan transport.PeerError, 4)
	conns[0].OnPeerFailure(func(pe transport.PeerError) { failed <- pe })

	conns[2].Kill()
	if err := conns[0].Send(2, 0, 1); err != nil {
		t.Fatalf("eager send must enqueue even while the peer is down: %v", err)
	}
	select {
	case pe := <-failed:
		if pe.Rank != 2 {
			t.Fatalf("failure callback named rank %d, want 2", pe.Rank)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("OnPeerFailure callback never fired")
	}
	// Sends toward the dead peer now fail fast with a typed error.
	err := conns[0].Send(2, 0, 2)
	if pe, ok := transport.AsPeerError(err); !ok || pe.Rank != 2 {
		t.Fatalf("Send to dead peer returned %v, want PeerError for rank 2", err)
	}
	// Traffic to the surviving peer keeps flowing.
	if err := conns[0].Send(1, 9, "alive"); err != nil {
		t.Fatalf("send to surviving peer failed: %v", err)
	}
	f := recvN(t, inbox[1], 1)[0]
	if f.Payload.(string) != "alive" || f.Src != 0 {
		t.Fatalf("unexpected frame %+v", f)
	}
}

func TestHeartbeatDetectsSilentPeerDeath(t *testing.T) {
	t.Parallel()
	// Rank 0 never sends rank 1 any data. With heartbeats enabled it must
	// still detect rank 1's death: pings ride the normal write path, so the
	// exhausted redial budget surfaces as a PeerError.
	conns, _ := startWorld(t, 2, func(rank int, cfg *Config) {
		cfg.HeartbeatInterval = 20 * time.Millisecond
		cfg.DialBackoff = time.Millisecond
		cfg.DialAttempts = 3
		cfg.DialTimeout = 200 * time.Millisecond
	})
	failed := make(chan transport.PeerError, 4)
	conns[0].OnPeerFailure(func(pe transport.PeerError) { failed <- pe })

	conns[1].Kill()
	select {
	case pe := <-failed:
		if pe.Rank != 1 {
			t.Fatalf("failure callback named rank %d, want 1", pe.Rank)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("heartbeats never detected the dead peer")
	}
}

func TestCloseAbandonsPingsToExitedPeer(t *testing.T) {
	t.Parallel()
	// End-of-run shutdown race: rank 1 finishes and closes first; rank 0's
	// next heartbeat ping dials a listener that no longer exists. Once rank
	// 0 itself begins closing, the undeliverable ping must be abandoned
	// rather than pressed through the retry budget — a peer that exited
	// while we are tearing down is not a failure, and Close must return nil.
	conns, _ := startWorld(t, 2, func(rank int, cfg *Config) {
		cfg.HeartbeatInterval = 10 * time.Millisecond
		// Keep the retry budget far longer than this test: the failure must
		// be averted by the closing check, not by winning a race against it.
		cfg.DialBackoff = 50 * time.Millisecond
		cfg.DialAttempts = 8
	})
	failed := make(chan transport.PeerError, 4)
	conns[0].OnPeerFailure(func(pe transport.PeerError) { failed <- pe })

	if err := conns[1].Close(); err != nil {
		t.Fatalf("rank 1 close: %v", err)
	}
	// Let at least one heartbeat tick enqueue a ping to the departed peer so
	// rank 0's writer is mid-retry against the dead listener.
	time.Sleep(50 * time.Millisecond)
	if err := conns[0].Close(); err != nil {
		t.Fatalf("rank 0 close after peer exit: %v", err)
	}
	select {
	case pe := <-failed:
		t.Fatalf("peer-failure callback fired for a graceful shutdown: %v", pe)
	default:
	}
}

func TestKillStopsEndpointImmediately(t *testing.T) {
	t.Parallel()
	conns, _ := startWorld(t, 2, func(rank int, cfg *Config) {
		cfg.DialBackoff = time.Millisecond
	})
	conns[0].Kill()
	if err := conns[0].Send(1, 0, 1); err == nil {
		t.Fatal("Send succeeded on a killed transport")
	}
	// Kill must be idempotent and compatible with a later Close.
	conns[0].Kill()
	conns[0].Close()
}

func TestRendezvousRetryBoundedByTotalDeadline(t *testing.T) {
	t.Parallel()
	// A rendezvous endpoint that accepts but never answers must not hang the
	// bootstrap forever: the retry loop is bounded by BootstrapTimeout as a
	// total deadline, and New fails with a descriptive error.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			_ = conn // accept and go silent; never send the table
		}
	}()
	start := time.Now()
	_, err = New(Config{
		Rank:             1,
		Size:             2,
		Rendezvous:       ln.Addr().String(),
		BootstrapTimeout: 400 * time.Millisecond,
		DialBackoff:      time.Millisecond,
	}, func(transport.Frame) {})
	if err == nil {
		t.Fatal("New succeeded against a mute rendezvous")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("bootstrap failure took %v; BootstrapTimeout was 400ms", elapsed)
	}
	if !strings.Contains(err.Error(), "rendezvous") {
		t.Fatalf("error does not mention the rendezvous: %v", err)
	}
}

func TestCloseDrainsQueuedFrames(t *testing.T) {
	t.Parallel()
	conns, inbox := startWorld(t, 2, nil)
	const n = 200
	payload := make([]float32, 512)
	for i := 0; i < n; i++ {
		if err := conns[0].Send(1, i, payload); err != nil {
			t.Fatal(err)
		}
	}
	// Close immediately: the queued frames must flush before teardown.
	if err := conns[0].Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	got := recvN(t, inbox[1], n)
	for i, f := range got {
		if f.Tag != i {
			t.Fatalf("frame %d has tag %d: drain reordered or lost frames", i, f.Tag)
		}
	}
}

func TestStatsCountWireBytes(t *testing.T) {
	t.Parallel()
	conns, inbox := startWorld(t, 2, nil)
	payload := make([]float64, 1024) // 8 KiB on the wire, plus framing
	const n = 10
	for i := 0; i < n; i++ {
		if err := conns[0].Send(1, 0, payload); err != nil {
			t.Fatal(err)
		}
	}
	recvN(t, inbox[1], n)

	s0, s1 := conns[0].Stats(), conns[1].Stats()
	if !s0.Wire || !s1.Wire {
		t.Fatalf("tcp stats must report Wire=true: %+v %+v", s0, s1)
	}
	if s0.FramesSent != n || s1.FramesRecv != n {
		t.Fatalf("frame counts: sent %d recv %d, want %d", s0.FramesSent, s1.FramesRecv, n)
	}
	minBytes := int64(n * 8 * 1024)
	if s0.BytesSent < minBytes || s1.BytesRecv < minBytes {
		t.Fatalf("byte counts below payload volume: sent %d recv %d, want ≥ %d", s0.BytesSent, s1.BytesRecv, minBytes)
	}
	if s1.BytesRecv > s0.BytesSent+1024 {
		t.Fatalf("receiver counted %d bytes, sender only %d", s1.BytesRecv, s0.BytesSent)
	}
}

// compressibleBuf builds an encoded-payload-sized buffer with enough
// repetition that wirecomp actually shrinks it — the shape of a coalesced
// sample batch, where IDs and feature prefixes repeat across entries.
func compressibleBuf(n int) []byte {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte(i % 17)
	}
	return buf
}

func TestCompressedSendRoundTrips(t *testing.T) {
	t.Parallel()
	conns, inbox := startWorld(t, 2, func(rank int, cfg *Config) {
		cfg.Compress = true
	})
	payload := compressibleBuf(64 << 10)
	wire, err := conns[0].SendMetered(1, 9, payload)
	if err != nil {
		t.Fatal(err)
	}
	f := recvN(t, inbox[1], 1)[0]
	got, ok := f.Payload.([]byte)
	if !ok {
		t.Fatalf("payload arrived as %T, want []byte", f.Payload)
	}
	if len(got) != len(payload) || f.Tag != 9 || f.Src != 0 {
		t.Fatalf("frame mangled: len=%d tag=%d src=%d", len(got), f.Tag, f.Src)
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("payload byte %d differs after compressed transit", i)
		}
	}
	// The frame must actually have travelled as KindDataZ, smaller than its
	// plain encoding, and the metered size must match the per-kind counter
	// bit for bit.
	plain := transport.FrameWireSize(payload)
	if wire >= plain {
		t.Fatalf("compressed wire size %d not below plain %d", wire, plain)
	}
	ks0, ks1 := conns[0].FramesByKind(), conns[1].FramesByKind()
	if ks0.Sent[transport.KindDataZ] != 1 || ks0.Sent[transport.KindData] != 0 {
		t.Fatalf("sender kind counters: %+v", ks0.Sent)
	}
	if ks1.Recv[transport.KindDataZ] != 1 {
		t.Fatalf("receiver kind counters: %+v", ks1.Recv)
	}
	if ks0.SentBytes[transport.KindDataZ] != wire {
		t.Fatalf("SentBytes[dataz]=%d, SendMetered reported %d", ks0.SentBytes[transport.KindDataZ], wire)
	}
	if ks1.RecvBytes[transport.KindDataZ] != wire {
		t.Fatalf("RecvBytes[dataz]=%d, sender shipped %d", ks1.RecvBytes[transport.KindDataZ], wire)
	}
	raw, cwire := conns[0].CompressionStats()
	if raw <= cwire || cwire <= 0 {
		t.Fatalf("CompressionStats raw=%d wire=%d, want raw > wire > 0", raw, cwire)
	}
}

func TestCompressionBelowThresholdStaysPlain(t *testing.T) {
	t.Parallel()
	conns, inbox := startWorld(t, 2, func(rank int, cfg *Config) {
		cfg.Compress = true
	})
	small := compressibleBuf(64) // under minCompressPayload
	if err := conns[0].Send(1, 0, small); err != nil {
		t.Fatal(err)
	}
	recvN(t, inbox[1], 1)
	ks := conns[0].FramesByKind()
	if ks.Sent[transport.KindDataZ] != 0 || ks.Sent[transport.KindData] != 1 {
		t.Fatalf("small payload should stay KindData: %+v", ks.Sent)
	}
}

func TestCompressionNegotiationAsymmetric(t *testing.T) {
	t.Parallel()
	// Only rank 0 opts in: neither direction may ship compressed frames,
	// because rank 1 never advertised FlagCompress (0→1 blocked by the peer
	// flag, 1→0 blocked by rank 1's own config).
	conns, inbox := startWorld(t, 2, func(rank int, cfg *Config) {
		cfg.Compress = rank == 0
	})
	payload := compressibleBuf(32 << 10)
	if err := conns[0].Send(1, 0, payload); err != nil {
		t.Fatal(err)
	}
	if err := conns[1].Send(0, 0, payload); err != nil {
		t.Fatal(err)
	}
	f1 := recvN(t, inbox[1], 1)[0]
	f0 := recvN(t, inbox[0], 1)[0]
	for _, f := range []transport.Frame{f0, f1} {
		got := f.Payload.([]byte)
		if len(got) != len(payload) || got[100] != payload[100] {
			t.Fatalf("payload mangled on mixed-capability wire")
		}
	}
	for r, c := range conns {
		ks := c.FramesByKind()
		if ks.Sent[transport.KindDataZ] != 0 || ks.Recv[transport.KindDataZ] != 0 {
			t.Fatalf("rank %d shipped compressed frames without negotiation: %+v", r, ks)
		}
	}
}

func TestSampleRefsFrameOverTCP(t *testing.T) {
	t.Parallel()
	conns, inbox := startWorld(t, 2, func(rank int, cfg *Config) {
		cfg.Compress = true // refs must stay uncompressed regardless
	})
	refs := transport.SampleRefs{3, 15, 16, 4096, 1 << 33}
	wire, err := conns[0].SendMetered(1, 4, refs)
	if err != nil {
		t.Fatal(err)
	}
	f := recvN(t, inbox[1], 1)[0]
	got, ok := f.Payload.(transport.SampleRefs)
	if !ok {
		t.Fatalf("refs arrived as %T", f.Payload)
	}
	if len(got) != len(refs) {
		t.Fatalf("refs count %d, want %d", len(got), len(refs))
	}
	for i := range got {
		if got[i] != refs[i] {
			t.Fatalf("ref %d = %d, want %d", i, got[i], refs[i])
		}
	}
	ks := conns[0].FramesByKind()
	if ks.Sent[transport.KindDataRef] != 1 {
		t.Fatalf("refs did not travel as KindDataRef: %+v", ks.Sent)
	}
	if ks.SentBytes[transport.KindDataRef] != wire {
		t.Fatalf("SentBytes[dataref]=%d, metered %d", ks.SentBytes[transport.KindDataRef], wire)
	}
	if want := transport.FrameWireSize(refs); wire != want {
		t.Fatalf("metered %d, FrameWireSize %d", wire, want)
	}
}

func TestSelfSendRoundTripsThroughCodec(t *testing.T) {
	t.Parallel()
	inbox := make(chan transport.Frame, 1)
	c, err := New(Config{Rank: 0, Size: 1}, func(f transport.Frame) { inbox <- f })
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(0, 5, []int32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f := <-inbox
	got, ok := f.Payload.([]int32)
	if !ok || len(got) != 3 || got[2] != 3 || f.Tag != 5 {
		t.Fatalf("self-send mangled frame: %+v", f)
	}
	// Non-encodable payloads must fail loudly even for self-sends: the wire
	// transport has identical semantics for every destination.
	if err := c.Send(0, 0, struct{ X int }{1}); err == nil {
		t.Fatal("self-send of a non-encodable payload succeeded")
	}
}

func TestSendValidation(t *testing.T) {
	t.Parallel()
	c, err := New(Config{Rank: 0, Size: 1}, func(transport.Frame) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(7, 0, nil); err == nil {
		t.Fatal("Send to out-of-range rank succeeded")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(0, 0, nil); err == nil {
		t.Fatal("Send on a closed transport succeeded")
	}
}

// TestElasticJoin forms a 3-rank world with capacity 4, then rendezvouses a
// fourth endpoint mid-run: the joiner adopts slot 3 and the full peer table,
// rank 0 surfaces the join through OnJoinRequest, the other members admit
// the newcomer, and data frames flow in both directions.
func TestElasticJoin(t *testing.T) {
	t.Parallel()
	conns, inbox := startWorld(t, 3, func(rank int, cfg *Config) {
		cfg.MaxSize = 4
	})

	joinCh := make(chan transport.JoinRequest, 1)
	conns[0].OnJoinRequest(func(jr transport.JoinRequest) { joinCh <- jr })

	joinInbox := make(chan transport.Frame, 64)
	joiner, err := New(Config{
		Join:             true,
		MaxSize:          4,
		Rendezvous:       conns[0].cfg.Rendezvous,
		BootstrapTimeout: 20 * time.Second,
	}, func(f transport.Frame) { joinInbox <- f })
	if err != nil {
		t.Fatalf("joiner New: %v", err)
	}
	t.Cleanup(func() { joiner.Close() })
	if joiner.Rank() != 3 || joiner.Size() != 4 {
		t.Fatalf("joiner adopted rank=%d size=%d, want 3/4", joiner.Rank(), joiner.Size())
	}

	var jr transport.JoinRequest
	select {
	case jr = <-joinCh:
	case <-time.After(15 * time.Second):
		t.Fatal("rank 0 never surfaced the join request")
	}
	if jr.Rank != 3 || jr.Addr == "" {
		t.Fatalf("join request %+v, want rank 3 with an address", jr)
	}
	// Non-root members learn the joiner's address out of band (in the real
	// protocol, from rank 0's broadcast) and admit it.
	for r := 1; r < 3; r++ {
		if err := conns[r].AdmitPeer(jr.Rank, jr.Addr, jr.Flags); err != nil {
			t.Fatalf("rank %d AdmitPeer: %v", r, err)
		}
	}

	for r := 0; r < 3; r++ {
		if err := conns[r].Send(3, 5, r*10); err != nil {
			t.Fatalf("rank %d send to joiner: %v", r, err)
		}
		if err := joiner.Send(r, 6, 100+r); err != nil {
			t.Fatalf("joiner send to rank %d: %v", r, err)
		}
	}
	got := map[int]int{}
	for _, f := range recvN(t, joinInbox, 3) {
		got[f.Src] = f.Payload.(int)
	}
	for r := 0; r < 3; r++ {
		if got[r] != r*10 {
			t.Fatalf("joiner inbox from rank %d = %v, want %d", r, got[r], r*10)
		}
	}
	for r := 0; r < 3; r++ {
		f := recvN(t, inbox[r], 1)[0]
		if f.Src != 3 || f.Payload.(int) != 100+r {
			t.Fatalf("rank %d got %+v from joiner, want src=3 payload=%d", r, f, 100+r)
		}
	}
}

// TestElasticJoinQueuedBeforeCallback checks the pending-join buffer: a join
// that lands before OnJoinRequest is registered is flushed to the callback at
// registration time instead of being lost.
func TestElasticJoinQueuedBeforeCallback(t *testing.T) {
	t.Parallel()
	conns, _ := startWorld(t, 2, func(rank int, cfg *Config) {
		cfg.MaxSize = 3
	})
	joiner, err := New(Config{
		Join:             true,
		MaxSize:          3,
		Rendezvous:       conns[0].cfg.Rendezvous,
		BootstrapTimeout: 20 * time.Second,
	}, func(transport.Frame) {})
	if err != nil {
		t.Fatalf("joiner New: %v", err)
	}
	t.Cleanup(func() { joiner.Close() })

	// The joiner's New returning means rank 0 already processed the hello, so
	// the request is sitting in the pending buffer.
	joinCh := make(chan transport.JoinRequest, 1)
	conns[0].OnJoinRequest(func(jr transport.JoinRequest) { joinCh <- jr })
	select {
	case jr := <-joinCh:
		if jr.Rank != 2 {
			t.Fatalf("flushed join request %+v, want rank 2", jr)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("queued join request was not flushed on registration")
	}
}

// TestElasticJoinWorldFull: once every latent slot is assigned, further
// joiners are refused (their rendezvous gets no table) and fail by deadline.
func TestElasticJoinWorldFull(t *testing.T) {
	t.Parallel()
	conns, _ := startWorld(t, 2, func(rank int, cfg *Config) {
		cfg.MaxSize = 3
	})
	first, err := New(Config{
		Join:             true,
		MaxSize:          3,
		Rendezvous:       conns[0].cfg.Rendezvous,
		BootstrapTimeout: 20 * time.Second,
	}, func(transport.Frame) {})
	if err != nil {
		t.Fatalf("first joiner: %v", err)
	}
	t.Cleanup(func() { first.Close() })

	_, err = New(Config{
		Join:             true,
		MaxSize:          3,
		Rendezvous:       conns[0].cfg.Rendezvous,
		BootstrapTimeout: 1500 * time.Millisecond,
		DialBackoff:      50 * time.Millisecond,
	}, func(transport.Frame) {})
	if err == nil {
		t.Fatal("joiner beyond capacity was admitted")
	}
}
