// Package wirecomp is the self-contained block codec the TCP transport
// wraps around coalesced sample-batch frames (DESIGN.md §13). It is an
// LZ77 byte-oriented format in the spirit of snappy — greedy hash-chain
// matching, literal runs and back-references, no entropy stage — chosen
// because sample batches are dominated by repeated header structure and
// near-duplicate feature blocks, and because the decoder must be cheap
// enough to sit on the transport's read loop.
//
// The format is deliberately tiny:
//
//	block      := uvarint(decodedLen) element*
//	element    := literal | match
//	literal    := tag(bit0=0, runLen-1 in bits 1..7) byte{runLen}   runLen 1..128
//	match      := tag(bit0=1, matchLen-minMatch in bits 1..7)
//	              uvarint(offset)                                   matchLen 4..131
//
// Offsets are distances back into the already-decoded output (1 ≤ offset ≤
// pos) and may overlap forward, so runs compress (offset 1). Every element
// is bounds-checked on decode; Decode never reads or writes out of range
// and returns an error for any malformed block, making the codec safe on
// untrusted wire input.
package wirecomp

import (
	"encoding/binary"
	"errors"
	"fmt"
)

const (
	minMatch      = 4
	maxMatchTag   = minMatch + 127 // longest match one tag byte encodes
	maxLiteralRun = 128

	hashBits = 14
	hashLen  = 1 << hashBits
)

// ErrCorrupt is wrapped by every Decode failure.
var ErrCorrupt = errors.New("wirecomp: corrupt block")

// MaxEncodedLen bounds the encoded size of n source bytes: the worst case
// is pure literals (one tag byte per 128 source bytes) plus the length
// prefix. Callers sizing scratch buffers use it; Encode never exceeds it.
func MaxEncodedLen(n int) int {
	return n + n/maxLiteralRun + binary.MaxVarintLen64 + 1
}

// Encode appends the compressed form of src to dst and returns the extended
// slice. It never fails; incompressible input degrades to literal runs
// (bounded by MaxEncodedLen). Encoding is deterministic: the same src
// always yields the same bytes.
func Encode(dst, src []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(src)))
	if len(src) < minMatch {
		return appendLiterals(dst, src)
	}
	var table [hashLen]int32 // last position+1 of each hash; 0 = empty
	litStart := 0            // start of the pending literal run
	pos := 0
	limit := len(src) - minMatch
	for pos <= limit {
		h := hash4(src[pos:])
		cand := int(table[h]) - 1
		table[h] = int32(pos) + 1
		if cand < 0 || src[cand] != src[pos] || src[cand+1] != src[pos+1] ||
			src[cand+2] != src[pos+2] || src[cand+3] != src[pos+3] {
			pos++
			continue
		}
		// Extend the match forward.
		n := minMatch
		for pos+n < len(src) && src[cand+n] == src[pos+n] {
			n++
		}
		dst = appendLiterals(dst, src[litStart:pos])
		offset := pos - cand
		for n > 0 {
			m := n
			if m > maxMatchTag {
				m = maxMatchTag
			}
			if m < minMatch {
				// Tail shorter than a match element: fold it into the next
				// literal run instead.
				break
			}
			dst = append(dst, byte((m-minMatch)<<1)|1)
			dst = binary.AppendUvarint(dst, uint64(offset))
			pos += m
			n -= m
		}
		litStart = pos
		// Seed the table across the match so immediately-following
		// repetitions are found (sparse: every 4th position keeps Encode
		// linear on highly repetitive input).
		for p := pos - minMatch; p > cand && p+minMatch <= len(src); p -= 4 {
			if p >= 0 {
				table[hash4(src[p:])] = int32(p) + 1
			}
		}
	}
	return appendLiterals(dst, src[litStart:])
}

func appendLiterals(dst, lit []byte) []byte {
	for len(lit) > 0 {
		n := len(lit)
		if n > maxLiteralRun {
			n = maxLiteralRun
		}
		dst = append(dst, byte((n-1)<<1))
		dst = append(dst, lit[:n]...)
		lit = lit[n:]
	}
	return dst
}

// DecodedLen returns the decoded size a block declares, without decoding.
func DecodedLen(src []byte) (int, error) {
	n, sz := binary.Uvarint(src)
	if sz <= 0 || n > 1<<32 {
		return 0, fmt.Errorf("%w: bad length prefix", ErrCorrupt)
	}
	return int(n), nil
}

// Decode appends the decompressed form of src to dst and returns the
// extended slice. Any structural violation — truncated element, offset
// beyond the produced output, output length not matching the declared
// length — returns an error wrapping ErrCorrupt with dst unusable.
func Decode(dst, src []byte) ([]byte, error) {
	declared, sz := binary.Uvarint(src)
	if sz <= 0 || declared > 1<<32 {
		return dst, fmt.Errorf("%w: bad length prefix", ErrCorrupt)
	}
	src = src[sz:]
	// A match element (2+ input bytes) expands to at most maxMatchTag output
	// bytes, so any block declaring more than that ratio is corrupt — checked
	// before the pre-allocation so hostile prefixes cannot force huge allocs.
	if declared > uint64(len(src))*maxMatchTag {
		return dst, fmt.Errorf("%w: declared length %d impossible for %d input bytes", ErrCorrupt, declared, len(src))
	}
	base := len(dst)
	if cap(dst)-base < int(declared) {
		grown := make([]byte, base, base+int(declared))
		copy(grown, dst)
		dst = grown
	}
	for len(src) > 0 {
		tag := src[0]
		src = src[1:]
		if tag&1 == 0 { // literal run
			n := int(tag>>1) + 1
			if n > len(src) {
				return dst, fmt.Errorf("%w: literal run of %d overruns input", ErrCorrupt, n)
			}
			dst = append(dst, src[:n]...)
			src = src[n:]
			continue
		}
		n := int(tag>>1) + minMatch
		offset, osz := binary.Uvarint(src)
		if osz <= 0 {
			return dst, fmt.Errorf("%w: truncated match offset", ErrCorrupt)
		}
		src = src[osz:]
		if offset == 0 || offset > uint64(len(dst)-base) {
			return dst, fmt.Errorf("%w: match offset %d at output position %d", ErrCorrupt, offset, len(dst)-base)
		}
		// Byte-at-a-time copy: overlapping matches (offset < n) replicate.
		from := len(dst) - int(offset)
		for i := 0; i < n; i++ {
			dst = append(dst, dst[from+i])
		}
	}
	if len(dst)-base != int(declared) {
		return dst, fmt.Errorf("%w: decoded %d bytes, block declares %d", ErrCorrupt, len(dst)-base, declared)
	}
	return dst, nil
}

func hash4(b []byte) uint32 {
	v := binary.LittleEndian.Uint32(b)
	return (v * 2654435761) >> (32 - hashBits)
}
