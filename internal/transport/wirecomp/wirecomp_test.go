package wirecomp

import (
	"bytes"
	"math/rand"
	"testing"
)

func roundTrip(t *testing.T, src []byte) []byte {
	t.Helper()
	enc := Encode(nil, src)
	if len(enc) > MaxEncodedLen(len(src)) {
		t.Fatalf("encoded %d bytes exceed MaxEncodedLen(%d)=%d", len(enc), len(src), MaxEncodedLen(len(src)))
	}
	if n, err := DecodedLen(enc); err != nil || n != len(src) {
		t.Fatalf("DecodedLen = %d, %v; want %d", n, err, len(src))
	}
	dec, err := Decode(nil, enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(dec, src) {
		t.Fatalf("round trip mismatch: got %d bytes, want %d", len(dec), len(src))
	}
	return enc
}

func TestRoundTrip(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		[]byte("a"),
		[]byte("abc"),
		[]byte("abcd"),
		bytes.Repeat([]byte{0}, 10000),
		bytes.Repeat([]byte("abcdefgh"), 500),
		[]byte("the quick brown fox jumps over the lazy dog, the quick brown fox"),
	}
	for i, src := range cases {
		enc := roundTrip(t, src)
		if len(src) >= 64 && isRepetitive(src) && len(enc) >= len(src) {
			t.Errorf("case %d: repetitive input did not compress: %d -> %d", i, len(src), len(enc))
		}
	}
}

func isRepetitive(src []byte) bool {
	return bytes.Count(src, src[:1]) > len(src)/4
}

// TestSampleBatchLikeInput mirrors the real workload: fixed-size headers
// with small varying fields followed by low-entropy float blocks must
// compress meaningfully (this is the shape of coalesced exchange frames).
func TestSampleBatchLikeInput(t *testing.T) {
	var src []byte
	for i := 0; i < 64; i++ {
		hdr := make([]byte, 28)
		hdr[0] = byte(i)
		src = append(src, hdr...)
		for j := 0; j < 16; j++ {
			src = append(src, byte(j), 0, 0x80, 0x3f) // fp32 patterns with shared suffixes
		}
	}
	enc := roundTrip(t, src)
	if len(enc)*2 > len(src) {
		t.Fatalf("batch-shaped input compressed %d -> %d, want at least 2x", len(src), len(enc))
	}
}

func TestRandomRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		n := rng.Intn(4096)
		src := make([]byte, n)
		switch i % 3 {
		case 0: // incompressible
			rng.Read(src)
		case 1: // low-entropy alphabet
			for j := range src {
				src[j] = byte(rng.Intn(4))
			}
		case 2: // repeated chunk
			chunk := make([]byte, 1+rng.Intn(64))
			rng.Read(chunk)
			for j := range src {
				src[j] = chunk[j%len(chunk)]
			}
		}
		roundTrip(t, src)
	}
}

func TestEncodeAppends(t *testing.T) {
	prefix := []byte("prefix")
	src := bytes.Repeat([]byte("xy"), 100)
	enc := Encode(append([]byte(nil), prefix...), src)
	if !bytes.HasPrefix(enc, prefix) {
		t.Fatal("Encode clobbered dst prefix")
	}
	dec, err := Decode(append([]byte(nil), prefix...), enc[len(prefix):])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(dec, prefix) || !bytes.Equal(dec[len(prefix):], src) {
		t.Fatal("Decode clobbered dst prefix or payload")
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	cases := map[string][]byte{
		"empty input":        {},
		"huge length prefix": {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02},
		"truncated literal":  {4, 0x06, 'a'},
		"offset beyond out":  {4, 0x01, 0x05},
		"zero offset":        {8, 0x06, 'a', 'b', 'c', 'd', 0x01, 0x00},
		"short output":       {9, 0x06, 'a', 'b', 'c', 'd'},
		"long output":        {2, 0x06, 'a', 'b', 'c', 'd'},
		"truncated offset":   {8, 0x06, 'a', 'b', 'c', 'd', 0x01},
	}
	for name, src := range cases {
		if _, err := Decode(nil, src); err == nil {
			t.Errorf("%s: Decode accepted corrupt input", name)
		}
	}
}

// TestDeterministic pins that Encode is a pure function of the input —
// the dedup protocol's lockstep accounting relies on both sides computing
// identical sizes.
func TestDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := make([]byte, 8192)
	for j := range src {
		src[j] = byte(rng.Intn(7))
	}
	a := Encode(nil, src)
	b := Encode(make([]byte, 0, 16), src)
	if !bytes.Equal(a, b) {
		t.Fatal("Encode not deterministic across dst capacities")
	}
}

func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("abcabcabcabcabcabc"))
	f.Add(bytes.Repeat([]byte{0x3f, 0x80, 0, 0}, 40))
	f.Fuzz(func(t *testing.T, src []byte) {
		enc := Encode(nil, src)
		if len(enc) > MaxEncodedLen(len(src)) {
			t.Fatalf("encoded %d > MaxEncodedLen %d", len(enc), MaxEncodedLen(len(src)))
		}
		dec, err := Decode(nil, enc)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if !bytes.Equal(dec, src) {
			t.Fatal("round trip mismatch")
		}
	})
}

// FuzzDecode feeds arbitrary bytes to the decoder: it must never panic or
// read out of bounds, only return data or an error.
func FuzzDecode(f *testing.F) {
	f.Add(Encode(nil, bytes.Repeat([]byte("pls"), 50)))
	f.Add([]byte{4, 0x06, 'a', 'b', 'c', 'd'})
	f.Fuzz(func(t *testing.T, src []byte) {
		out, err := Decode(nil, src)
		if err == nil {
			// A valid block must re-encode/re-decode consistently.
			if _, err := Decode(nil, Encode(nil, out)); err != nil {
				t.Fatalf("re-encode of decoded output failed: %v", err)
			}
		}
	})
}

func BenchmarkEncodeBatch64(b *testing.B) {
	var src []byte
	for i := 0; i < 64; i++ {
		hdr := make([]byte, 28)
		hdr[0] = byte(i)
		src = append(src, hdr...)
		for j := 0; j < 16; j++ {
			src = append(src, byte(j), 0, 0x80, 0x3f)
		}
	}
	buf := make([]byte, 0, MaxEncodedLen(len(src)))
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = Encode(buf[:0], src)
	}
}

func BenchmarkDecodeBatch64(b *testing.B) {
	var src []byte
	for i := 0; i < 64; i++ {
		hdr := make([]byte, 28)
		hdr[0] = byte(i)
		src = append(src, hdr...)
		for j := 0; j < 16; j++ {
			src = append(src, byte(j), 0, 0x80, 0x3f)
		}
	}
	enc := Encode(nil, src)
	out := make([]byte, 0, len(src))
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		out, err = Decode(out[:0], enc)
		if err != nil {
			b.Fatal(err)
		}
	}
}
