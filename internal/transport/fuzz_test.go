package transport

import (
	"bytes"
	"math"
	"testing"

	"plshuffle/internal/data"
	"plshuffle/internal/tensor"
	"plshuffle/internal/transport/wirecomp"
)

// FuzzFrameRoundTrip pins the wire framing invariants: any buffer that
// UnmarshalFrame accepts must re-marshal to the identical bytes (the
// encoding is canonical), ReadFrame must agree with UnmarshalFrame, and
// malformed input must produce an error — never a panic, never a giant
// allocation.
func FuzzFrameRoundTrip(f *testing.F) {
	seed := func(w WireFrame) {
		buf, err := MarshalFrame(w)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	seed(WireFrame{Kind: KindData, Src: 0, Dst: 1, Tag: 7, Payload: []byte{codeInt, 1, 0, 0, 0, 0, 0, 0, 0}})
	seed(WireFrame{Kind: KindHello, Src: 3, Dst: 0, Payload: []byte("127.0.0.1:9999")})
	seed(WireFrame{Kind: KindTable, Src: 0, Dst: -1, Payload: EncodeAddrTable([]string{"a:1", "b:2"})})
	seed(WireFrame{Kind: KindBye, Src: 2, Dst: 5, Tag: -12345})
	if batch, err := EncodePayload(data.EncodeSampleBatch([]data.Sample{
		{ID: 1, Label: 0, Features: []float32{1, 2}, Bytes: 4},
		{ID: 2, Label: 1, Features: []float32{-3}, Bytes: 8},
	})); err == nil {
		seed(WireFrame{Kind: KindData, Src: 1, Dst: 2, Tag: 99, Payload: batch})
		// A compressed data frame as the TCP backend builds it: the payload
		// section of the KindData frame, wirecomp-encoded under KindDataZ.
		seed(WireFrame{Kind: KindDataZ, Src: 1, Dst: 2, Tag: 99,
			Payload: wirecomp.Encode(nil, batch)})
	}
	if refs, err := EncodePayload(SampleRefs{3, 7, 4096}); err == nil {
		seed(WireFrame{Kind: KindDataRef, Src: 2, Dst: 0, Tag: 41, Payload: refs})
	}
	if dec, err := EncodePayload(QDecision{Generation: 1, Epoch: 4, Q: 0.3, Reason: 1}); err == nil {
		// A controller Q-decision broadcast as the root builds it: a KindData
		// frame on the reserved control tag (DESIGN.md §16).
		seed(WireFrame{Kind: KindData, Src: 0, Dst: 3, Tag: (1 << 24) | (1 << 23) | 4, Payload: dec})
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // hostile length prefix
	f.Add(bytes.Repeat([]byte{0}, 64))

	f.Fuzz(func(t *testing.T, buf []byte) {
		w, err := UnmarshalFrame(buf)
		if err != nil {
			return // malformed input must error, which it did — done
		}
		re, err := MarshalFrame(w)
		if err != nil {
			t.Fatalf("decoded frame does not re-marshal: %v", err)
		}
		if !bytes.Equal(re, buf) {
			t.Fatalf("frame round trip not canonical:\n in  %x\n out %x", buf, re)
		}
		// ReadFrame over the same bytes must consume exactly the buffer and
		// agree on every field.
		r, n, err := ReadFrame(bytes.NewReader(buf))
		if err != nil || n != len(buf) {
			t.Fatalf("ReadFrame disagrees with UnmarshalFrame: n=%d err=%v", n, err)
		}
		if r.Kind != w.Kind || r.Src != w.Src || r.Dst != w.Dst || r.Tag != w.Tag || !bytes.Equal(r.Payload, w.Payload) {
			t.Fatalf("ReadFrame decoded %+v, UnmarshalFrame %+v", r, w)
		}
		// ReadFrameInto (the pooled read path) must agree as well, including
		// when its scratch buffer carries stale bytes from a previous frame.
		scratch := bytes.Repeat([]byte{0xAA}, 16)
		ri, n, err := ReadFrameInto(bytes.NewReader(buf), &scratch)
		if err != nil || n != len(buf) {
			t.Fatalf("ReadFrameInto disagrees with ReadFrame: n=%d err=%v", n, err)
		}
		if ri.Kind != w.Kind || ri.Src != w.Src || ri.Dst != w.Dst || ri.Tag != w.Tag || !bytes.Equal(ri.Payload, w.Payload) {
			t.Fatalf("ReadFrameInto decoded %+v, UnmarshalFrame %+v", ri, w)
		}
	})
}

// FuzzPayloadRoundTrip pins the payload codec: any buffer DecodePayload
// accepts re-encodes to the identical bytes (bit-preserving even for NaN
// floats), and malformed buffers error without panicking.
func FuzzPayloadRoundTrip(f *testing.F) {
	seed := func(v any) {
		buf, err := EncodePayload(v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	seed(nil)
	seed([]byte{1, 2, 3})
	seed([]float32{0.5, float32(math.NaN()), -3})
	seed([]float64{math.Inf(1), 2.25})
	seed([]int{-1, 0, 1 << 40})
	seed([]int32{-7, 7})
	seed([]int64{1 << 62})
	seed([]uint64{^uint64(0)})
	seed("hello world")
	seed(42)
	seed(3.14159)
	seed(true)
	seed(data.Sample{ID: 9, Label: 2, Features: []float32{1, -2.5}, Bytes: 117 << 10})
	seed(SampleRefs{})
	seed(SampleRefs{0})
	seed(SampleRefs{5, 6, 1 << 40})
	seed(SampleRefs{1 << 62, 1<<62 + 1})
	seed(QDecision{Generation: 0, Epoch: 0, Q: 0.25, Reason: 0})
	seed(QDecision{Generation: 3, Epoch: 17, Q: math.NaN(), Reason: 4})
	seed(QDecision{Generation: -1, Epoch: 1 << 40, Q: -0.0, Reason: 255})
	m := tensor.New(2, 3)
	for i := range m.Data {
		m.Data[i] = float32(i)
	}
	seed(m)
	f.Add([]byte{})
	f.Add([]byte{codeMatrix, 0xff, 0xff, 0xff, 0x7f, 0xff, 0xff, 0xff, 0x7f}) // hostile dims

	f.Fuzz(func(t *testing.T, buf []byte) {
		v, err := DecodePayload(buf)
		if err != nil {
			return
		}
		re, err := EncodePayload(v)
		if err != nil {
			t.Fatalf("decoded payload %T does not re-encode: %v", v, err)
		}
		if !bytes.Equal(re, buf) {
			t.Fatalf("payload round trip not canonical for %T:\n in  %x\n out %x", v, buf, re)
		}
	})
}
