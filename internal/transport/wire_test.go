package transport

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"plshuffle/internal/data"
	"plshuffle/internal/tensor"
)

func TestFrameMarshalUnmarshal(t *testing.T) {
	frames := []WireFrame{
		{Kind: KindData, Src: 0, Dst: 3, Tag: 17, Payload: []byte{1, 2, 3}},
		{Kind: KindHello, Src: 2, Dst: 0, Payload: []byte("10.0.0.1:4242")},
		{Kind: KindTable, Src: 0, Dst: -1, Payload: EncodeAddrTable([]string{"", "x:1"})},
		{Kind: KindBye, Src: 1, Dst: 2, Tag: -9_000_000_000}, // tags exceed int32
		{Kind: KindData, Src: 5, Dst: 6, Tag: 0},             // empty payload
	}
	for _, want := range frames {
		buf, err := MarshalFrame(want)
		if err != nil {
			t.Fatalf("marshal %+v: %v", want, err)
		}
		got, err := UnmarshalFrame(buf)
		if err != nil {
			t.Fatalf("unmarshal %+v: %v", want, err)
		}
		if got.Kind != want.Kind || got.Src != want.Src || got.Dst != want.Dst || got.Tag != want.Tag || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
		r, n, err := ReadFrame(bytes.NewReader(buf))
		if err != nil || n != len(buf) || r.Tag != want.Tag {
			t.Fatalf("ReadFrame: n=%d err=%v frame=%+v", n, err, r)
		}
	}
}

func TestFrameMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":          {},
		"short prefix":   {1, 0},
		"tiny body":      {3, 0, 0, 0, 9, 9, 9},
		"hostile length": {0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0},
		"length mismatch": func() []byte {
			buf, _ := MarshalFrame(WireFrame{Kind: KindData})
			return buf[:len(buf)-2]
		}(),
		"unknown kind": func() []byte {
			buf, _ := MarshalFrame(WireFrame{Kind: KindData})
			buf[4] = 200
			return buf
		}(),
	}
	for name, buf := range cases {
		if _, err := UnmarshalFrame(buf); err == nil {
			t.Errorf("%s: UnmarshalFrame accepted malformed input", name)
		}
	}
	// ReadFrame on a truncated stream must report an error, not block or panic.
	full, _ := MarshalFrame(WireFrame{Kind: KindData, Payload: []byte{1, 2, 3, 4}})
	if _, _, err := ReadFrame(bytes.NewReader(full[:len(full)-1])); err == nil {
		t.Error("ReadFrame accepted a truncated stream")
	}
	if _, _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("ReadFrame on empty stream: %v, want io.EOF", err)
	}
	if _, err := MarshalFrame(WireFrame{Payload: make([]byte, MaxFramePayload+1)}); err == nil {
		t.Error("MarshalFrame accepted an oversized payload")
	}
}

func TestAddrTableRoundTrip(t *testing.T) {
	tables := [][]string{
		{},
		{"127.0.0.1:80"},
		{"", "a:1", "host.example:65535", ""},
	}
	for _, want := range tables {
		got, err := DecodeAddrTable(EncodeAddrTable(want))
		if err != nil {
			t.Fatalf("%v: %v", want, err)
		}
		if len(got) != len(want) {
			t.Fatalf("round trip %v -> %v", want, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("entry %d: %q != %q", i, got[i], want[i])
			}
		}
	}
	for name, buf := range map[string][]byte{
		"truncated header": {1, 0},
		"truncated entry":  {1, 0, 0, 0, 5, 0, 0, 0, 'a'},
		"hostile count":    {0xff, 0xff, 0xff, 0xff},
	} {
		if _, err := DecodeAddrTable(buf); err == nil {
			t.Errorf("%s: DecodeAddrTable accepted malformed input", name)
		}
	}
}

func TestPayloadCodecRoundTrip(t *testing.T) {
	mat := tensor.New(3, 2)
	for i := range mat.Data {
		mat.Data[i] = float32(i) - 2.5
	}
	values := []any{
		nil,
		[]byte{0, 255, 3},
		[]float32{1.5, -2, 0},
		[]float64{3.25},
		[]int{-4, 1 << 50},
		[]int32{9},
		[]int64{-1},
		[]uint64{12345},
		"shuffle",
		-77,
		2.5,
		true,
		false,
		data.Sample{ID: 3, Label: 1, Features: []float32{0.25}, Bytes: 42},
		mat,
	}
	for _, want := range values {
		buf, err := EncodePayload(want)
		if err != nil {
			t.Fatalf("encode %T: %v", want, err)
		}
		got, err := DecodePayload(buf)
		if err != nil {
			t.Fatalf("decode %T: %v", want, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip %T: got %#v want %#v", want, got, want)
		}
		if est := PayloadWireSize(want); est != int64(len(buf)) {
			t.Fatalf("PayloadWireSize(%T) = %d, encoded length %d", want, est, len(buf))
		}
	}
	if _, err := EncodePayload(struct{ A int }{}); err == nil {
		t.Fatal("EncodePayload accepted a non-encodable type")
	}
	if _, err := DecodePayload([]byte{codeSample, 1, 2}); err == nil {
		t.Fatal("DecodePayload accepted a truncated sample")
	}
}
