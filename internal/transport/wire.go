package transport

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Frame kinds on the wire. Data frames carry codec-encoded payloads between
// ranks; the control kinds implement the TCP backend's bootstrap.
const (
	KindData  = uint8(0) // payload = EncodePayload output
	KindHello = uint8(1) // dialer identifies itself; payload = optional addr
	KindTable = uint8(2) // rendezvous rank↔addr table; payload = EncodeAddrTable
	KindBye   = uint8(3) // graceful shutdown marker
	KindPing  = uint8(4) // liveness heartbeat; carries no payload
)

// WireFrame is the binary frame exchanged by wire backends:
//
//	uint32  body length (excluding this prefix)
//	uint8   kind
//	int32   src rank
//	int32   dst rank
//	int64   tag
//	[]byte  payload
//
// All integers are little-endian. Tags may be negative (the runtime's
// internal collective tags are), hence the signed 64-bit field.
type WireFrame struct {
	Kind    uint8
	Src     int32
	Dst     int32
	Tag     int64
	Payload []byte
}

// wireHeaderLen is the fixed body header: kind + src + dst + tag.
const wireHeaderLen = 1 + 4 + 4 + 8

// MaxFramePayload bounds a frame's payload so a malformed or hostile length
// prefix cannot force a giant allocation.
const MaxFramePayload = 1 << 28 // 256 MiB

// MarshalFrame encodes the frame including its length prefix, ready to be
// written to a stream in a single Write.
func MarshalFrame(f WireFrame) ([]byte, error) {
	return AppendFrame(make([]byte, 0, 4+wireHeaderLen+len(f.Payload)), f)
}

// AppendFrame appends the frame's wire encoding (length prefix included) to
// dst and returns the extended slice. The bytes are identical to
// MarshalFrame's; hot paths pass a pooled buffer so steady-state sends
// allocate nothing.
func AppendFrame(dst []byte, f WireFrame) ([]byte, error) {
	if len(f.Payload) > MaxFramePayload {
		return dst, fmt.Errorf("transport: frame payload %d bytes exceeds limit %d", len(f.Payload), MaxFramePayload)
	}
	body := wireHeaderLen + len(f.Payload)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(body))
	dst = append(dst, f.Kind)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(f.Src))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(f.Dst))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(f.Tag))
	return append(dst, f.Payload...), nil
}

// AppendDataFrame appends a complete KindData frame carrying payload to dst,
// encoding the payload directly into the frame (no intermediate payload
// buffer — the pooled fast path of the TCP Send). The produced bytes are
// identical to MarshalFrame over EncodePayload.
func AppendDataFrame(dst []byte, src, dstRank int32, tag int64, payload any) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length prefix, patched below
	dst = append(dst, KindData)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(src))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(dstRank))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(tag))
	var err error
	dst, err = AppendPayload(dst, payload)
	if err != nil {
		return dst[:start], err
	}
	body := len(dst) - start - 4
	if body-wireHeaderLen > MaxFramePayload {
		return dst[:start], fmt.Errorf("transport: frame payload %d bytes exceeds limit %d", body-wireHeaderLen, MaxFramePayload)
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(body))
	return dst, nil
}

// UnmarshalFrame decodes a frame from a length-prefixed buffer as produced
// by MarshalFrame. It never panics on malformed input.
func UnmarshalFrame(buf []byte) (WireFrame, error) {
	if len(buf) < 4 {
		return WireFrame{}, fmt.Errorf("transport: frame truncated: %d bytes", len(buf))
	}
	body := binary.LittleEndian.Uint32(buf)
	if body < wireHeaderLen || body > wireHeaderLen+MaxFramePayload {
		return WireFrame{}, fmt.Errorf("transport: frame body length %d out of range", body)
	}
	if uint32(len(buf)-4) != body {
		return WireFrame{}, fmt.Errorf("transport: frame length mismatch: prefix %d, have %d", body, len(buf)-4)
	}
	f := WireFrame{
		Kind: buf[4],
		Src:  int32(binary.LittleEndian.Uint32(buf[5:])),
		Dst:  int32(binary.LittleEndian.Uint32(buf[9:])),
		Tag:  int64(binary.LittleEndian.Uint64(buf[13:])),
	}
	if f.Kind > KindPing {
		return WireFrame{}, fmt.Errorf("transport: unknown frame kind %d", f.Kind)
	}
	if n := int(body) - wireHeaderLen; n > 0 {
		f.Payload = make([]byte, n)
		copy(f.Payload, buf[4+wireHeaderLen:])
	}
	return f, nil
}

// ReadFrame reads one length-prefixed frame from r. It returns the frame
// and the total number of wire bytes consumed.
func ReadFrame(r io.Reader) (WireFrame, int, error) {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		return WireFrame{}, 0, err
	}
	body := binary.LittleEndian.Uint32(prefix[:])
	if body < wireHeaderLen || body > wireHeaderLen+MaxFramePayload {
		return WireFrame{}, 4, fmt.Errorf("transport: frame body length %d out of range", body)
	}
	buf := make([]byte, 4+body)
	copy(buf, prefix[:])
	if _, err := io.ReadFull(r, buf[4:]); err != nil {
		return WireFrame{}, 4, fmt.Errorf("transport: reading frame body: %w", err)
	}
	f, err := UnmarshalFrame(buf)
	return f, len(buf), err
}

// ReadFrameInto reads one length-prefixed frame from r into *scratch,
// growing it only when a frame exceeds its capacity, and returns the frame
// plus the wire bytes consumed. The returned frame's Payload aliases
// *scratch: it is valid only until the next ReadFrameInto call on the same
// scratch buffer, so callers must consume (decode/copy) it first. This is
// the TCP read loop's zero-allocation steady-state path.
func ReadFrameInto(r io.Reader, scratch *[]byte) (WireFrame, int, error) {
	buf := *scratch
	if cap(buf) < 4 {
		buf = make([]byte, 0, 4096)
	}
	buf = buf[:4]
	*scratch = buf
	if _, err := io.ReadFull(r, buf); err != nil {
		return WireFrame{}, 0, err
	}
	body := binary.LittleEndian.Uint32(buf)
	if body < wireHeaderLen || body > wireHeaderLen+MaxFramePayload {
		return WireFrame{}, 4, fmt.Errorf("transport: frame body length %d out of range", body)
	}
	need := 4 + int(body)
	if cap(buf) < need {
		grown := make([]byte, need)
		copy(grown, buf)
		buf = grown
	} else {
		buf = buf[:need]
	}
	*scratch = buf
	if _, err := io.ReadFull(r, buf[4:]); err != nil {
		return WireFrame{}, 4, fmt.Errorf("transport: reading frame body: %w", err)
	}
	f := WireFrame{
		Kind: buf[4],
		Src:  int32(binary.LittleEndian.Uint32(buf[5:])),
		Dst:  int32(binary.LittleEndian.Uint32(buf[9:])),
		Tag:  int64(binary.LittleEndian.Uint64(buf[13:])),
	}
	if f.Kind > KindPing {
		return WireFrame{}, need, fmt.Errorf("transport: unknown frame kind %d", f.Kind)
	}
	if int(body) > wireHeaderLen {
		f.Payload = buf[4+wireHeaderLen:]
	}
	return f, need, nil
}

// EncodeAddrTable serializes the rank-indexed address table exchanged
// during the TCP rendezvous (KindTable payload).
func EncodeAddrTable(addrs []string) []byte {
	n := 4
	for _, a := range addrs {
		n += 4 + len(a)
	}
	buf := make([]byte, n)
	binary.LittleEndian.PutUint32(buf, uint32(len(addrs)))
	off := 4
	for _, a := range addrs {
		binary.LittleEndian.PutUint32(buf[off:], uint32(len(a)))
		off += 4
		copy(buf[off:], a)
		off += len(a)
	}
	return buf
}

// DecodeAddrTable parses an EncodeAddrTable payload.
func DecodeAddrTable(buf []byte) ([]string, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("transport: addr table truncated")
	}
	count := binary.LittleEndian.Uint32(buf)
	if count > 1<<20 {
		return nil, fmt.Errorf("transport: addr table count %d out of range", count)
	}
	off := 4
	out := make([]string, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(buf)-off < 4 {
			return nil, fmt.Errorf("transport: addr table entry %d truncated", i)
		}
		l := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if l < 0 || len(buf)-off < l {
			return nil, fmt.Errorf("transport: addr table entry %d length %d out of range", i, l)
		}
		out = append(out, string(buf[off:off+l]))
		off += l
	}
	return out, nil
}
