package transport

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Frame kinds on the wire. Data frames carry codec-encoded payloads between
// ranks; the control kinds implement the TCP backend's bootstrap.
const (
	KindData  = uint8(0) // payload = EncodePayload output
	KindHello = uint8(1) // dialer identifies itself; payload = optional addr
	KindTable = uint8(2) // rendezvous rank↔addr table; payload = EncodeAddrTable
	KindBye   = uint8(3) // graceful shutdown marker
	KindPing  = uint8(4) // liveness heartbeat; carries no payload
	// KindDataZ is a compressed data frame: the payload section is a
	// wirecomp block whose decoded bytes are exactly a KindData payload
	// (EncodePayload output). Only sent to peers that advertised
	// compression support during the bootstrap (DESIGN.md §13).
	KindDataZ = uint8(5)
	// KindDataRef is a dedup reference frame: the payload is an encoded
	// SampleRefs value naming samples the receiver already holds in its
	// exchange side-cache. It is a data-plane frame (delivered like
	// KindData) with its own kind so per-kind byte counters isolate the
	// reference traffic the dedup protocol substitutes for payloads.
	KindDataRef = uint8(6)
)

// WireFrame is the binary frame exchanged by wire backends:
//
//	uint32  body length (excluding this prefix)
//	uint8   kind
//	int32   src rank
//	int32   dst rank
//	int64   tag
//	[]byte  payload
//
// All integers are little-endian. Tags may be negative (the runtime's
// internal collective tags are), hence the signed 64-bit field.
type WireFrame struct {
	Kind    uint8
	Src     int32
	Dst     int32
	Tag     int64
	Payload []byte
}

// wireHeaderLen is the fixed body header: kind + src + dst + tag.
const wireHeaderLen = 1 + 4 + 4 + 8

// MaxFramePayload bounds a frame's payload so a malformed or hostile length
// prefix cannot force a giant allocation.
const MaxFramePayload = 1 << 28 // 256 MiB

// MarshalFrame encodes the frame including its length prefix, ready to be
// written to a stream in a single Write.
func MarshalFrame(f WireFrame) ([]byte, error) {
	return AppendFrame(make([]byte, 0, 4+wireHeaderLen+len(f.Payload)), f)
}

// AppendFrame appends the frame's wire encoding (length prefix included) to
// dst and returns the extended slice. The bytes are identical to
// MarshalFrame's; hot paths pass a pooled buffer so steady-state sends
// allocate nothing.
func AppendFrame(dst []byte, f WireFrame) ([]byte, error) {
	if len(f.Payload) > MaxFramePayload {
		return dst, fmt.Errorf("transport: frame payload %d bytes exceeds limit %d", len(f.Payload), MaxFramePayload)
	}
	body := wireHeaderLen + len(f.Payload)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(body))
	dst = append(dst, f.Kind)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(f.Src))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(f.Dst))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(f.Tag))
	return append(dst, f.Payload...), nil
}

// DataKindFor returns the wire kind a data-plane payload travels under:
// SampleRefs ride their own KindDataRef so byte counters can tell dedup
// references from sample payloads; everything else is KindData. Both kinds
// share the KindData delivery path (DecodePayload → handler).
func DataKindFor(payload any) uint8 {
	if _, ok := payload.(SampleRefs); ok {
		return KindDataRef
	}
	return KindData
}

// AppendDataFrame appends a complete data frame carrying payload to dst,
// encoding the payload directly into the frame (no intermediate payload
// buffer — the pooled fast path of the TCP Send). The produced bytes are
// identical to MarshalFrame over EncodePayload; the kind is DataKindFor
// of the payload.
func AppendDataFrame(dst []byte, src, dstRank int32, tag int64, payload any) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length prefix, patched below
	dst = append(dst, DataKindFor(payload))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(src))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(dstRank))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(tag))
	var err error
	dst, err = AppendPayload(dst, payload)
	if err != nil {
		return dst[:start], err
	}
	body := len(dst) - start - 4
	if body-wireHeaderLen > MaxFramePayload {
		return dst[:start], fmt.Errorf("transport: frame payload %d bytes exceeds limit %d", body-wireHeaderLen, MaxFramePayload)
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(body))
	return dst, nil
}

// UnmarshalFrame decodes a frame from a length-prefixed buffer as produced
// by MarshalFrame. It never panics on malformed input.
func UnmarshalFrame(buf []byte) (WireFrame, error) {
	if len(buf) < 4 {
		return WireFrame{}, fmt.Errorf("transport: frame truncated: %d bytes", len(buf))
	}
	body := binary.LittleEndian.Uint32(buf)
	if body < wireHeaderLen || body > wireHeaderLen+MaxFramePayload {
		return WireFrame{}, fmt.Errorf("transport: frame body length %d out of range", body)
	}
	if uint32(len(buf)-4) != body {
		return WireFrame{}, fmt.Errorf("transport: frame length mismatch: prefix %d, have %d", body, len(buf)-4)
	}
	f := WireFrame{
		Kind: buf[4],
		Src:  int32(binary.LittleEndian.Uint32(buf[5:])),
		Dst:  int32(binary.LittleEndian.Uint32(buf[9:])),
		Tag:  int64(binary.LittleEndian.Uint64(buf[13:])),
	}
	if f.Kind > KindDataRef {
		return WireFrame{}, fmt.Errorf("transport: unknown frame kind %d", f.Kind)
	}
	if n := int(body) - wireHeaderLen; n > 0 {
		f.Payload = make([]byte, n)
		copy(f.Payload, buf[4+wireHeaderLen:])
	}
	return f, nil
}

// ReadFrame reads one length-prefixed frame from r. It returns the frame
// and the total number of wire bytes consumed.
func ReadFrame(r io.Reader) (WireFrame, int, error) {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		return WireFrame{}, 0, err
	}
	body := binary.LittleEndian.Uint32(prefix[:])
	if body < wireHeaderLen || body > wireHeaderLen+MaxFramePayload {
		return WireFrame{}, 4, fmt.Errorf("transport: frame body length %d out of range", body)
	}
	buf := make([]byte, 4+body)
	copy(buf, prefix[:])
	if _, err := io.ReadFull(r, buf[4:]); err != nil {
		return WireFrame{}, 4, fmt.Errorf("transport: reading frame body: %w", err)
	}
	f, err := UnmarshalFrame(buf)
	return f, len(buf), err
}

// ReadFrameInto reads one length-prefixed frame from r into *scratch,
// growing it only when a frame exceeds its capacity, and returns the frame
// plus the wire bytes consumed. The returned frame's Payload aliases
// *scratch: it is valid only until the next ReadFrameInto call on the same
// scratch buffer, so callers must consume (decode/copy) it first. This is
// the TCP read loop's zero-allocation steady-state path.
func ReadFrameInto(r io.Reader, scratch *[]byte) (WireFrame, int, error) {
	buf := *scratch
	if cap(buf) < 4 {
		buf = make([]byte, 0, 4096)
	}
	buf = buf[:4]
	*scratch = buf
	if _, err := io.ReadFull(r, buf); err != nil {
		return WireFrame{}, 0, err
	}
	body := binary.LittleEndian.Uint32(buf)
	if body < wireHeaderLen || body > wireHeaderLen+MaxFramePayload {
		return WireFrame{}, 4, fmt.Errorf("transport: frame body length %d out of range", body)
	}
	need := 4 + int(body)
	if cap(buf) < need {
		grown := make([]byte, need)
		copy(grown, buf)
		buf = grown
	} else {
		buf = buf[:need]
	}
	*scratch = buf
	if _, err := io.ReadFull(r, buf[4:]); err != nil {
		return WireFrame{}, 4, fmt.Errorf("transport: reading frame body: %w", err)
	}
	f := WireFrame{
		Kind: buf[4],
		Src:  int32(binary.LittleEndian.Uint32(buf[5:])),
		Dst:  int32(binary.LittleEndian.Uint32(buf[9:])),
		Tag:  int64(binary.LittleEndian.Uint64(buf[13:])),
	}
	if f.Kind > KindDataRef {
		return WireFrame{}, need, fmt.Errorf("transport: unknown frame kind %d", f.Kind)
	}
	if int(body) > wireHeaderLen {
		f.Payload = buf[4+wireHeaderLen:]
	}
	return f, need, nil
}

// EncodeAddrTable serializes the rank-indexed address table exchanged
// during the TCP rendezvous (KindTable payload).
func EncodeAddrTable(addrs []string) []byte {
	n := 4
	for _, a := range addrs {
		n += 4 + len(a)
	}
	buf := make([]byte, n)
	binary.LittleEndian.PutUint32(buf, uint32(len(addrs)))
	off := 4
	for _, a := range addrs {
		binary.LittleEndian.PutUint32(buf[off:], uint32(len(a)))
		off += 4
		copy(buf[off:], a)
		off += len(a)
	}
	return buf
}

// Per-rank capability flags carried by the v2 hello/table exchange. A rank
// advertises what it is WILLING TO RECEIVE; senders intersect their own
// config with the peer's advertisement, so a mixed world (some ranks with
// -wire-compress, some without) degrades to plain frames pairwise instead
// of failing.
const (
	// FlagCompress: the rank accepts KindDataZ (wirecomp-compressed)
	// frames and would like peers to send them.
	FlagCompress = byte(1 << 0)
)

// helloV2Marker begins a v2 hello payload. A v1 hello payload is the
// dialer's raw listen address, which is never empty and never starts with
// NUL, so the marker is unambiguous: marker, one flags byte, then the
// address bytes.
const helloV2Marker = byte(0x00)

// EncodeHello serializes a dialer's hello payload: v1 (bare address) when
// flags is zero — byte-identical to the pre-negotiation wire — and the v2
// marker+flags+addr form otherwise.
func EncodeHello(addr string, flags byte) []byte {
	if flags == 0 {
		return []byte(addr)
	}
	out := make([]byte, 0, 2+len(addr))
	out = append(out, helloV2Marker, flags)
	return append(out, addr...)
}

// DecodeHello parses a hello payload of either version.
func DecodeHello(payload []byte) (addr string, flags byte) {
	if len(payload) >= 2 && payload[0] == helloV2Marker {
		return string(payload[2:]), payload[1]
	}
	return string(payload), 0
}

// peerTableV2 flags the count word of a v2 table. v1 tables bound the
// count at 1<<20, so the high bit is never set by a legacy encoder.
const peerTableV2 = uint32(1 << 31)

// EncodePeerTable serializes the rendezvous rank↔(addr, capability) table.
// With all-zero flags it emits the legacy EncodeAddrTable bytes, so worlds
// that negotiated nothing stay wire-compatible with old peers; otherwise it
// emits the v2 form (count|peerTableV2, then len-prefixed addr + flag byte
// per rank).
func EncodePeerTable(addrs []string, flags []byte) []byte {
	anyFlags := false
	for _, f := range flags {
		if f != 0 {
			anyFlags = true
			break
		}
	}
	if !anyFlags {
		return EncodeAddrTable(addrs)
	}
	n := 4
	for _, a := range addrs {
		n += 4 + len(a) + 1
	}
	buf := make([]byte, n)
	binary.LittleEndian.PutUint32(buf, uint32(len(addrs))|peerTableV2)
	off := 4
	for i, a := range addrs {
		binary.LittleEndian.PutUint32(buf[off:], uint32(len(a)))
		off += 4
		copy(buf[off:], a)
		off += len(a)
		var f byte
		if i < len(flags) {
			f = flags[i]
		}
		buf[off] = f
		off++
	}
	return buf
}

// DecodePeerTable parses either table version; v1 input yields all-zero
// flags.
func DecodePeerTable(buf []byte) (addrs []string, flags []byte, err error) {
	if len(buf) >= 4 && binary.LittleEndian.Uint32(buf)&peerTableV2 != 0 {
		count := binary.LittleEndian.Uint32(buf) &^ peerTableV2
		if count > 1<<20 {
			return nil, nil, fmt.Errorf("transport: peer table count %d out of range", count)
		}
		off := 4
		addrs = make([]string, 0, count)
		flags = make([]byte, 0, count)
		for i := uint32(0); i < count; i++ {
			if len(buf)-off < 4 {
				return nil, nil, fmt.Errorf("transport: peer table entry %d truncated", i)
			}
			l := int(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
			if l < 0 || len(buf)-off < l+1 {
				return nil, nil, fmt.Errorf("transport: peer table entry %d length %d out of range", i, l)
			}
			addrs = append(addrs, string(buf[off:off+l]))
			flags = append(flags, buf[off+l])
			off += l + 1
		}
		return addrs, flags, nil
	}
	addrs, err = DecodeAddrTable(buf)
	if err != nil {
		return nil, nil, err
	}
	return addrs, make([]byte, len(addrs)), nil
}

// DecodeAddrTable parses an EncodeAddrTable payload.
func DecodeAddrTable(buf []byte) ([]string, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("transport: addr table truncated")
	}
	count := binary.LittleEndian.Uint32(buf)
	if count > 1<<20 {
		return nil, fmt.Errorf("transport: addr table count %d out of range", count)
	}
	off := 4
	out := make([]string, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(buf)-off < 4 {
			return nil, fmt.Errorf("transport: addr table entry %d truncated", i)
		}
		l := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if l < 0 || len(buf)-off < l {
			return nil, fmt.Errorf("transport: addr table entry %d length %d out of range", i, l)
		}
		out = append(out, string(buf[off:off+l]))
		off += l
	}
	return out, nil
}
