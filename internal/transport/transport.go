// Package transport defines the pluggable point-to-point message layer the
// MPI-like runtime (internal/mpi) sits on. A backend moves addressed frames
// between ranks; everything above it — mailbox matching with MPI semantics
// (per-(pair, tag) FIFO, ANY_SOURCE/ANY_TAG), collectives, the exchange
// scheduler — is backend-agnostic.
//
// Two backends ship with the repo:
//
//   - inproc: the original single-process runtime. Ranks are goroutines and
//     Send is a synchronous function call into the destination's handler,
//     with defensive payload cloning. This is the default and the fastest.
//   - tcp: ranks are OS processes. Frames are length-prefixed binary
//     records over persistent TCP connections, with a rendezvous bootstrap,
//     dial retry with exponential backoff, and drained shutdown. See
//     internal/transport/tcp.
//
// The split mirrors how real MPI implementations layer matching over BTLs
// (byte-transfer layers): semantics live in one place, wires in another,
// and the conformance suite (internal/transport/transporttest) pins the
// semantics both backends must provide.
package transport

import (
	"errors"
	"fmt"
	"time"
)

// Frame is one addressed message as delivered to a rank's handler. Payload
// is a decoded Go value: for the inproc backend it is the (cloned) value the
// sender passed; for wire backends it is the result of DecodePayload, so
// only wire-encodable types (see EncodePayload) can cross process
// boundaries.
type Frame struct {
	Src     int
	Dst     int
	Tag     int
	Payload any
	// Wire is the exact number of bytes this frame occupied on the wire
	// (length prefix and header included): the bytes actually read off the
	// socket for the TCP backend — compressed size if the frame traveled as
	// KindDataZ — and the deterministic FrameWireSize for inproc. Zero for
	// self-delivered frames, which never touch a wire.
	Wire int64
}

// Handler receives inbound frames for the local rank. Implementations of
// Conn may invoke it from multiple goroutines concurrently; the mpi mailbox
// serializes internally. A handler must not block for long — it is called
// on the backend's delivery path.
type Handler func(Frame)

// Stats is a snapshot of a connection's traffic counters. For wire backends
// the byte counts are real bytes moved over sockets (including frame
// headers); for inproc they are the estimated encoded payload sizes. Wire
// distinguishes the two so callers (e.g. the trainer's trace events) can
// report genuine network volume when it exists.
type Stats struct {
	FramesSent int64
	FramesRecv int64
	BytesSent  int64
	BytesRecv  int64
	Wire       bool
}

// NumKinds is the number of wire frame kinds (KindData..KindDataRef),
// sizing the per-kind counter arrays of KindStats.
const NumKinds = int(KindDataRef) + 1

// KindStats is a snapshot of a wire backend's per-frame-kind traffic
// counters: how many frames — and, on backends that meter real sockets,
// how many wire bytes — of each kind (data, hello, table, bye, ping,
// dataz, dataref) crossed the connection in each direction. Indexed by the
// Kind* constants. The totals decompose Stats' counts by purpose, so an
// observer can tell data volume from bootstrap and liveness overhead, and
// compressed/dedup'd exchange traffic from plain sample payloads.
type KindStats struct {
	Sent [NumKinds]int64
	Recv [NumKinds]int64
	// SentBytes/RecvBytes are the wire bytes per kind (length prefix and
	// header included). Zero on backends without real sockets.
	SentBytes [NumKinds]int64
	RecvBytes [NumKinds]int64
}

// KindStatser is implemented by backends that count frames per wire kind.
// FramesByKind must be safe to call concurrently with traffic (telemetry
// scrapes it from an HTTP goroutine).
type KindStatser interface {
	FramesByKind() KindStats
}

// LivenessStatser is implemented by backends that track when each peer was
// last heard from (any successfully read frame, heartbeats included).
// LastHeard returns the zero time for the own rank and for peers never
// heard from. It must be safe to call concurrently with traffic.
type LivenessStatser interface {
	LastHeard(rank int) time.Time
}

// Unwrapper is implemented by interposing transports (fault injectors,
// chaos wrappers) that delegate to an inner Conn. AsKindStatser and
// AsLivenessStatser walk the chain so observability reaches the real
// backend through any stack of wrappers.
type Unwrapper interface {
	Underlying() Conn
}

// AsKindStatser finds the first KindStatser in c's wrapper chain.
func AsKindStatser(c Conn) (KindStatser, bool) {
	for c != nil {
		if ks, ok := c.(KindStatser); ok {
			return ks, true
		}
		u, ok := c.(Unwrapper)
		if !ok {
			break
		}
		c = u.Underlying()
	}
	return nil, false
}

// MeteredSender is implemented by backends whose Send can report the exact
// number of wire bytes the frame occupies (after compression, if any):
// SendMetered behaves exactly like Send and additionally returns that size
// (0 for self-sends, which never touch a wire). The exchange scheduler
// prefers it so its byte accounting stays exact even when the transport
// compresses frames underneath.
type MeteredSender interface {
	SendMetered(dst, tag int, payload any) (int64, error)
}

// AsMeteredSender reports whether c itself meters sends. Unlike the stats
// accessors it deliberately does NOT walk the Unwrapper chain: sends must
// flow through every interposed wrapper (a fault injector that was skipped
// would lose its chance to drop or delay the frame), so only the outermost
// connection's own implementation counts. Wrapped stacks fall back to
// Send + FrameWireSize estimation.
func AsMeteredSender(c Conn) (MeteredSender, bool) {
	ms, ok := c.(MeteredSender)
	return ms, ok
}

// CompressionStatser is implemented by backends that compress data frames.
// CompressionStats returns the cumulative payload bytes that entered the
// compressor (raw) and the bytes that left it and were framed (wire) —
// only for frames actually sent compressed, so raw/wire is the achieved
// compression ratio. Safe to call concurrently with traffic.
type CompressionStatser interface {
	CompressionStats() (raw, wire int64)
}

// AsCompressionStatser finds the first CompressionStatser in c's wrapper
// chain (read-only observability, so unwrapping is safe).
func AsCompressionStatser(c Conn) (CompressionStatser, bool) {
	for c != nil {
		if cs, ok := c.(CompressionStatser); ok {
			return cs, true
		}
		u, ok := c.(Unwrapper)
		if !ok {
			break
		}
		c = u.Underlying()
	}
	return nil, false
}

// AsLivenessStatser finds the first LivenessStatser in c's wrapper chain.
func AsLivenessStatser(c Conn) (LivenessStatser, bool) {
	for c != nil {
		if ls, ok := c.(LivenessStatser); ok {
			return ls, true
		}
		u, ok := c.(Unwrapper)
		if !ok {
			break
		}
		c = u.Underlying()
	}
	return nil, false
}

// Conn is one rank's endpoint into a transport backend.
//
// Semantics every backend must provide (enforced by transporttest):
//
//   - Eager sends: Send enqueues or delivers and returns without waiting
//     for the receiver; it must never deadlock against an opposing Send.
//     After Send returns the caller may mutate its buffers freely.
//   - Non-overtaking: two frames from the same source to the same
//     destination arrive in the order they were sent.
//   - Self-delivery: Send(ownRank, ...) loops back through the handler.
//
// Send returns an error only for local failures (unencodable payload,
// closed transport, exhausted retry budget); delivery itself is
// asynchronous.
type Conn interface {
	Rank() int
	Size() int
	Send(dst, tag int, payload any) error
	// Stats returns a snapshot of the traffic counters.
	Stats() Stats
	// Close drains queued outbound frames (bounded by the backend's drain
	// budget) and releases resources. It reports the first transport
	// failure observed during the connection's lifetime, if any.
	Close() error
}

// Phases a peer failure can be observed in — the Phase field of PeerError.
// They name the transport operation that exposed the failure, not the
// training phase (the trainer maps failures onto its own phases).
const (
	PhaseSend      = "send"      // outbound frame could not be delivered
	PhaseRecv      = "recv"      // inbound connection died mid-stream
	PhaseDial      = "dial"      // peer's data listener unreachable
	PhaseHeartbeat = "heartbeat" // liveness probe went unanswered
	PhaseClose     = "close"     // local endpoint closed while ops pending
)

// PeerError is the typed failure a transport backend reports when one
// specific remote rank is unreachable: dead process, partitioned network,
// exhausted retry budget. It deliberately identifies WHICH peer failed and
// during WHAT operation, so upper layers can degrade around the dead rank
// (shrink the effective exchange fraction, drop it from collectives)
// instead of treating the failure as a whole-world loss.
type PeerError struct {
	Rank  int    // the unreachable peer's rank
	Phase string // transport operation that surfaced the failure (Phase* consts)
	Err   error  // underlying cause, if any
}

func (e *PeerError) Error() string {
	if e.Err == nil {
		return fmt.Sprintf("transport: peer rank %d unreachable (%s)", e.Rank, e.Phase)
	}
	return fmt.Sprintf("transport: peer rank %d unreachable (%s): %v", e.Rank, e.Phase, e.Err)
}

func (e *PeerError) Unwrap() error { return e.Err }

// AsPeerError extracts a *PeerError from an error chain.
func AsPeerError(err error) (*PeerError, bool) {
	var pe *PeerError
	if errors.As(err, &pe) {
		return pe, true
	}
	return nil, false
}

// FailureNotifier is implemented by backends that detect peer death
// asynchronously (heartbeats, connection resets, exhausted redial budgets).
// OnPeerFailure registers a callback invoked at most once per failed peer,
// from a backend goroutine; it must be registered before traffic flows and
// must not block. The mpi layer uses it to wake receives and collectives
// that would otherwise block forever on a dead rank.
type FailureNotifier interface {
	OnPeerFailure(func(PeerError))
}

// JoinRequest describes a would-be rank that reached the transport's
// rendezvous mid-run (elastic join, DESIGN.md §15): the world rank the
// bootstrap root assigned it, the data-listener address it advertises, and
// its negotiated capability flags. The transport only performs the
// handshake; admitting the rank into the running world (AdmitPeer on every
// member, mpi.Grow, state transfer) is the upper layers' protocol.
type JoinRequest struct {
	Rank  int
	Addr  string
	Flags byte
}

// JoinNotifier is implemented by backends whose bootstrap root keeps
// accepting rendezvous hellos after the initial world has formed.
// OnJoinRequest registers a callback invoked once per admitted joiner, from
// a backend goroutine; it must be registered before traffic flows and must
// not block.
type JoinNotifier interface {
	OnJoinRequest(func(JoinRequest))
}

// PeerAdmitter is implemented by backends that can attach a new peer to an
// already-running endpoint: AdmitPeer records the peer's address and
// capability flags so subsequent sends toward rank dial it like any
// bootstrap-time peer. The rank must lie within the endpoint's configured
// capacity (tcp.Config.MaxSize). Shared-memory backends, whose worlds are
// fixed at creation, simply don't implement the interface.
type PeerAdmitter interface {
	AdmitPeer(rank int, addr string, flags byte) error
}

// AsPeerAdmitter finds the first PeerAdmitter in c's wrapper chain.
// Admission is control-plane state, not a frame, so unwrapping through
// fault injectors is safe (they interpose on frames, not peer tables).
func AsPeerAdmitter(c Conn) (PeerAdmitter, bool) {
	for c != nil {
		if pa, ok := c.(PeerAdmitter); ok {
			return pa, true
		}
		u, ok := c.(Unwrapper)
		if !ok {
			break
		}
		c = u.Underlying()
	}
	return nil, false
}

// AsJoinNotifier finds the first JoinNotifier in c's wrapper chain.
func AsJoinNotifier(c Conn) (JoinNotifier, bool) {
	for c != nil {
		if jn, ok := c.(JoinNotifier); ok {
			return jn, true
		}
		u, ok := c.(Unwrapper)
		if !ok {
			break
		}
		c = u.Underlying()
	}
	return nil, false
}

// Killer is implemented by backends that can simulate an abrupt process
// death for fault-injection tests: Kill tears the endpoint down instantly —
// no drain, no goodbye frames — exactly as SIGKILL would. After Kill every
// Send fails and peers observe the silence through their own detectors.
type Killer interface {
	Kill()
}

// Resetter is implemented by wire backends whose established connections
// can be torn down WITHOUT declaring any peer dead — the fault-injection
// analogue of a transient network blip (switch reboot, TCP RST storm).
// After ResetPeers the next frame toward each peer redials within the
// backend's normal retry budget; no queued frame is lost and no failure is
// reported unless the budget is then exhausted. Shared-memory backends have
// no connections to reset and simply don't implement the interface.
type Resetter interface {
	ResetPeers()
}

// ClonePayload defensively copies the slice types commonly exchanged by the
// library (gradients, sample bytes, ID lists) so distributed-memory
// semantics hold on shared-memory backends: after a send, mutating the
// caller's buffer must not affect the receiver. Other payload types are
// passed by reference; callers sending custom types must treat them as
// immutable after the send.
func ClonePayload(p any) any {
	switch v := p.(type) {
	case []float32:
		out := make([]float32, len(v))
		copy(out, v)
		return out
	case []float64:
		out := make([]float64, len(v))
		copy(out, v)
		return out
	case []int:
		out := make([]int, len(v))
		copy(out, v)
		return out
	case []int32:
		out := make([]int32, len(v))
		copy(out, v)
		return out
	case []int64:
		out := make([]int64, len(v))
		copy(out, v)
		return out
	case []uint64:
		out := make([]uint64, len(v))
		copy(out, v)
		return out
	case []byte:
		out := make([]byte, len(v))
		copy(out, v)
		return out
	case SampleRefs:
		out := make(SampleRefs, len(v))
		copy(out, v)
		return out
	default:
		return p
	}
}

// CloneCovers reports whether ClonePayload defensively copies values of p's
// type. Hot paths that want to send a scratch buffer and immediately reuse
// it may only do so when this holds — otherwise a shared-memory backend
// would deliver an aliased slice.
func CloneCovers(p any) bool {
	switch p.(type) {
	case []float32, []float64, []int, []int32, []int64, []uint64, []byte, SampleRefs:
		return true
	default:
		return false
	}
}
