// Package transporttest is the shared conformance suite for transport
// backends. RunTransportTests exercises, through a real mpi.Comm, the MPI
// semantics the exchange scheduler and the trainer depend on — per-(pair,
// tag) FIFO non-overtaking, ANY_SOURCE/ANY_TAG matching, deadlock-free
// eager pairwise exchange, and back-to-back collectives — so every backend
// (inproc goroutines, TCP processes, and whatever comes next) is held to
// the same contract.
package transporttest

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"plshuffle/internal/data"
	"plshuffle/internal/mpi"
	"plshuffle/internal/transport"
	"plshuffle/internal/transport/inproc"
	"plshuffle/internal/transport/tcp"
)

// WrapConn interposes on one rank's connection — how the chaos suite slides
// a fault injector under an unmodified rank program. A nil WrapConn is the
// identity.
type WrapConn func(rank int, inner transport.Conn) transport.Conn

// Backend runs a rank program over a world of a given size on one concrete
// transport.
type Backend interface {
	Name() string
	// Run executes fn once per rank and returns the joined rank errors.
	Run(n int, fn func(c *mpi.Comm) error) error
	// Open builds the world's communicators WITHOUT running a program and
	// without Run's quiesce-then-close epilogue — teardown-semantics tests
	// (RunCloseSemanticsTests) drive Close/Recv races directly. The cleanup
	// closes every communicator still open.
	Open(n int) ([]*mpi.Comm, func(), error)
}

// Inproc returns the in-process (goroutine) backend harness.
func Inproc() Backend { return inprocBackend{name: "inproc"} }

// InprocWrapped returns an in-process backend with every rank's connection
// passed through wrap. Unlike Inproc (mpi.Run, whole-world abort), ranks run
// over per-rank communicators (mpi.Connect), so one rank failing — say, a
// scripted crash — does not unwind its peers; that is exactly the isolation
// the chaos tests need.
func InprocWrapped(name string, wrap WrapConn) Backend {
	return inprocBackend{name: name, wrap: wrap}
}

type inprocBackend struct {
	name string
	wrap WrapConn
}

func (b inprocBackend) Name() string { return b.name }

func (b inprocBackend) Run(n int, fn func(c *mpi.Comm) error) error {
	if b.wrap == nil {
		return mpi.Run(n, fn)
	}
	comms, cleanup, err := b.Open(n)
	if err != nil {
		return err
	}
	defer cleanup()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = mpi.Execute(comms[rank], fn)
		}(r)
	}
	if !waitTimeout(&wg, 60*time.Second) {
		return fmt.Errorf("transporttest: %s world of %d ranks did not finish within 60s", b.name, n)
	}
	return errors.Join(errs...)
}

func (b inprocBackend) Open(n int) ([]*mpi.Comm, func(), error) {
	if b.wrap == nil {
		w := mpi.NewWorld(n)
		comms := make([]*mpi.Comm, n)
		for r := 0; r < n; r++ {
			comms[r] = w.Comm(r)
		}
		return comms, func() { closeAll(comms) }, nil
	}
	network := inproc.NewNetwork(n)
	comms := make([]*mpi.Comm, n)
	for r := 0; r < n; r++ {
		rank := r
		comm, err := mpi.Connect(func(h transport.Handler) (transport.Conn, error) {
			return b.wrap(rank, network.Attach(rank, h)), nil
		})
		if err != nil {
			closeAll(comms[:r])
			return nil, nil, fmt.Errorf("transporttest: rank %d: %w", rank, err)
		}
		comms[r] = comm
	}
	return comms, func() { closeAll(comms) }, nil
}

// TCP returns a backend harness that runs every rank as a goroutine in this
// process but moves every frame across real localhost TCP sockets through
// the tcp backend — the full wire path (codec, framing, rendezvous, mesh)
// without needing to fork processes inside a test.
func TCP() Backend { return tcpBackend{name: "tcp"} }

// TCPWrapped returns a TCP backend with every rank's connection passed
// through wrap and the given per-rank config hook applied before dialing
// (nil cfgHook keeps the defaults) — the chaos suite uses it to enable
// heartbeats and shorten retry budgets.
func TCPWrapped(name string, wrap WrapConn, cfgHook func(rank int, cfg *tcp.Config)) Backend {
	return tcpBackend{name: name, wrap: wrap, cfgHook: cfgHook}
}

type tcpBackend struct {
	name    string
	wrap    WrapConn
	cfgHook func(rank int, cfg *tcp.Config)
}

func (b tcpBackend) Name() string { return b.name }

func (b tcpBackend) Run(n int, fn func(c *mpi.Comm) error) error {
	comms, cleanup, err := b.Open(n)
	if err != nil {
		return err
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			err := mpi.Execute(comms[rank], func(c *mpi.Comm) error {
				if err := fn(c); err != nil {
					return err
				}
				// Quiesce before teardown so no rank closes its transport
				// while peers still expect frames.
				c.Barrier()
				return nil
			})
			if cerr := comms[rank].Close(); err == nil && cerr != nil {
				err = fmt.Errorf("rank %d: close: %w", rank, cerr)
			}
			errs[rank] = err
		}(r)
	}
	if !waitTimeout(&wg, 60*time.Second) {
		return fmt.Errorf("transporttest: %s world of %d ranks did not finish within 60s", b.name, n)
	}
	cleanup()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (b tcpBackend) Open(n int) ([]*mpi.Comm, func(), error) {
	// Reserve the rendezvous port race-free: bind it here and hand the
	// listener to rank 0.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, fmt.Errorf("transporttest: reserving rendezvous: %w", err)
	}
	rendezvous := ln.Addr().String()

	comms := make([]*mpi.Comm, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			cfg := tcp.Config{
				Rank:             rank,
				Size:             n,
				Rendezvous:       rendezvous,
				BootstrapTimeout: 30 * time.Second,
			}
			if rank == 0 {
				cfg.RendezvousListener = ln
			}
			if b.cfgHook != nil {
				b.cfgHook(rank, &cfg)
			}
			comm, err := mpi.Connect(func(h transport.Handler) (transport.Conn, error) {
				inner, err := tcp.New(cfg, h)
				if err != nil {
					return nil, err
				}
				if b.wrap != nil {
					return b.wrap(rank, inner), nil
				}
				return inner, nil
			})
			if err != nil {
				errs[rank] = fmt.Errorf("rank %d: %w", rank, err)
				return
			}
			comms[rank] = comm
		}(r)
	}
	if !waitTimeout(&wg, 40*time.Second) {
		closeAll(comms)
		return nil, nil, fmt.Errorf("transporttest: tcp bootstrap of %d ranks did not finish within 40s", n)
	}
	if err := errors.Join(errs...); err != nil {
		closeAll(comms)
		return nil, nil, err
	}
	return comms, func() { closeAll(comms) }, nil
}

func closeAll(comms []*mpi.Comm) {
	for _, c := range comms {
		if c != nil {
			c.Close()
		}
	}
}

// waitTimeout waits for wg up to d; false means the deadline expired first.
func waitTimeout(wg *sync.WaitGroup, d time.Duration) bool {
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
		return true
	case <-time.After(d):
		return false
	}
}

// RunCloseSemanticsTests pins the teardown contract every backend must
// honor: a Close issued from another goroutine (a watchdog) wakes a Recv
// blocked on a message that will never come — surfacing ErrCommClosed
// instead of deadlocking — and a Send after Close returns an error instead
// of panicking or silently dropping the frame.
func RunCloseSemanticsTests(t *testing.T, b Backend) {
	t.Helper()

	t.Run(fmt.Sprintf("%s/CloseWakesBlockedRecv", b.Name()), func(t *testing.T) {
		comms, cleanup, err := b.Open(2)
		if err != nil {
			t.Fatal(err)
		}
		defer cleanup()
		errCh := make(chan error, 1)
		go func() {
			errCh <- mpi.Execute(comms[0], func(c *mpi.Comm) error {
				c.Recv(1, 7) // no peer ever sends tag 7
				return nil
			})
		}()
		time.Sleep(50 * time.Millisecond) // let the Recv block
		comms[0].Close()
		select {
		case err := <-errCh:
			if err == nil {
				t.Fatal("blocked Recv returned nil after Close; want ErrCommClosed unwind")
			}
			if !errors.Is(err, mpi.ErrCommClosed) {
				t.Fatalf("blocked Recv unwound with %v; want ErrCommClosed in the chain", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("Recv still blocked 10s after Close — teardown deadlock")
		}
	})

	t.Run(fmt.Sprintf("%s/SendAfterClose", b.Name()), func(t *testing.T) {
		comms, cleanup, err := b.Open(2)
		if err != nil {
			t.Fatal(err)
		}
		defer cleanup()
		if err := comms[0].Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		// Transport level: the raw connection must refuse the frame.
		if err := comms[0].Transport().Send(1, 0, []int{1}); err == nil {
			t.Error("transport Send after Close returned nil; want an error")
		}
		// Runtime level: the same misuse through the mpi API must surface as
		// a recovered rank error, not a panic or a hang.
		err = mpi.Execute(comms[0], func(c *mpi.Comm) error {
			c.Send(1, 0, []int{1})
			return nil
		})
		if err == nil {
			t.Error("mpi Send after Close returned nil; want a transport-failure error")
		}
	})
}

// RunTransportTests runs the conformance suite against a backend. Every
// subtest uses only wire-encodable payload types so the same programs are
// valid over every backend.
func RunTransportTests(t *testing.T, b Backend) {
	t.Helper()

	run := func(name string, n int, fn func(c *mpi.Comm) error) {
		t.Run(fmt.Sprintf("%s/%s", b.Name(), name), func(t *testing.T) {
			t.Parallel()
			if err := b.Run(n, fn); err != nil {
				t.Fatal(err)
			}
		})
	}

	run("FIFONonOvertaking", 2, func(c *mpi.Comm) error {
		const msgs = 200
		if c.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				c.Send(1, 3, i)
			}
			return nil
		}
		for i := 0; i < msgs; i++ {
			p, st := c.Recv(0, 3)
			if st.Source != 0 || st.Tag != 3 {
				return fmt.Errorf("message %d: status %+v", i, st)
			}
			if p.(int) != i {
				return fmt.Errorf("message %d arrived out of order: got %v", i, p)
			}
		}
		return nil
	})

	run("FIFOPerTagInterleaved", 2, func(c *mpi.Comm) error {
		const msgs = 50
		if c.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				c.Send(1, 10, i)
				c.Send(1, 11, -i)
			}
			return nil
		}
		// Drain tag 11 first, then tag 10: each stream must stay ordered
		// even when received out of send order.
		for i := 0; i < msgs; i++ {
			if p, _ := c.Recv(0, 11); p.(int) != -i {
				return fmt.Errorf("tag 11 msg %d: got %v", i, p)
			}
		}
		for i := 0; i < msgs; i++ {
			if p, _ := c.Recv(0, 10); p.(int) != i {
				return fmt.Errorf("tag 10 msg %d: got %v", i, p)
			}
		}
		return nil
	})

	run("AnySourceMatching", 4, func(c *mpi.Comm) error {
		if c.Rank() != 0 {
			c.Send(0, 1, c.Rank())
			return nil
		}
		seen := map[int]bool{}
		for i := 0; i < c.Size()-1; i++ {
			p, st := c.Recv(mpi.AnySource, 1)
			if p.(int) != st.Source {
				return fmt.Errorf("payload %v does not match status source %d", p, st.Source)
			}
			seen[st.Source] = true
		}
		if len(seen) != c.Size()-1 {
			return fmt.Errorf("messages from %d distinct sources, want %d", len(seen), c.Size()-1)
		}
		return nil
	})

	run("AnyTagMatching", 2, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 42, "tagged")
			return nil
		}
		p, st := c.Recv(0, mpi.AnyTag)
		if st.Tag != 42 || p.(string) != "tagged" {
			return fmt.Errorf("AnyTag got %v with status %+v", p, st)
		}
		return nil
	})

	run("TagMatchingOutOfOrder", 2, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 5, "tag5")
			c.Send(1, 9, "tag9")
			return nil
		}
		p9, _ := c.Recv(0, 9)
		p5, _ := c.Recv(0, 5)
		if p9.(string) != "tag9" || p5.(string) != "tag5" {
			return fmt.Errorf("tag matching wrong: %v / %v", p9, p5)
		}
		return nil
	})

	run("EagerPairwiseExchange", 2, func(c *mpi.Comm) error {
		// Both ranks send a large buffer first, then receive: eager sends
		// must not deadlock against each other (socket backpressure).
		buf := make([]float32, 1<<16)
		for i := range buf {
			buf[i] = float32(c.Rank()*len(buf) + i)
		}
		other := 1 - c.Rank()
		p, _ := c.SendRecv(other, 0, buf, other, 0)
		got := p.([]float32)
		if len(got) != len(buf) {
			return fmt.Errorf("exchange returned %d elements, want %d", len(got), len(buf))
		}
		if got[1] != float32(other*len(buf)+1) {
			return fmt.Errorf("exchange element mismatch: %v", got[1])
		}
		return nil
	})

	run("SendBufferReuse", 2, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			buf := []float64{1, 2, 3}
			c.Send(1, 0, buf)
			buf[0] = 99 // must not reach the receiver
			c.Barrier()
			return nil
		}
		c.Barrier()
		p, _ := c.Recv(0, 0)
		if got := p.([]float64)[0]; got != 1 {
			return fmt.Errorf("receiver saw mutated buffer: %v", got)
		}
		return nil
	})

	run("BackToBackCollectives", 4, func(c *mpi.Comm) error {
		for iter := 0; iter < 25; iter++ {
			buf := []int{c.Rank() + iter}
			mpi.Allreduce(c, buf, mpi.OpSum)
			if want := 4*iter + 6; buf[0] != want {
				return fmt.Errorf("iter %d: allreduce got %d want %d", iter, buf[0], want)
			}
			b := []int{0}
			if c.Rank() == iter%4 {
				b[0] = iter
			}
			mpi.Bcast(c, b, iter%4)
			if b[0] != iter {
				return fmt.Errorf("iter %d: bcast got %d", iter, b[0])
			}
			c.Barrier()
		}
		return nil
	})

	run("AlltoallPersonalized", 4, func(c *mpi.Comm) error {
		send := make([][]int, c.Size())
		for d := range send {
			send[d] = make([]int, d+1)
			for i := range send[d] {
				send[d][i] = c.Rank()*1000 + d
			}
		}
		out := mpi.Alltoall(c, send)
		for src := 0; src < c.Size(); src++ {
			if len(out[src]) != c.Rank()+1 {
				return fmt.Errorf("from %d: len %d, want %d", src, len(out[src]), c.Rank()+1)
			}
			for _, v := range out[src] {
				if v != src*1000+c.Rank() {
					return fmt.Errorf("from %d got %d", src, v)
				}
			}
		}
		return nil
	})

	run("SampleRoundTrip", 2, func(c *mpi.Comm) error {
		// The exchange scheduler's actual wire pattern: encoded samples with
		// ANY_SOURCE receives.
		s := data.Sample{ID: 7, Label: 3, Features: []float32{0.5, -1.25, 3}, Bytes: 117 << 10}
		other := 1 - c.Rank()
		c.Isend(other, 0, s.Encode())
		p, _ := c.Recv(mpi.AnySource, 0)
		got, err := data.DecodeSample(p.([]byte))
		if err != nil {
			return err
		}
		if got.ID != s.ID || got.Label != s.Label || got.Bytes != s.Bytes || len(got.Features) != 3 || got.Features[1] != -1.25 {
			return fmt.Errorf("sample mangled in transit: %+v", got)
		}
		return nil
	})

	run("SampleRefsRoundTrip", 2, func(c *mpi.Comm) error {
		// The dedup reference frame: a sorted id list that must survive any
		// backend byte-identically — the receiver materializes samples from
		// its cache segment purely from these ids.
		refs := transport.SampleRefs{2, 3, 40, 1 << 20, 1 << 41}
		other := 1 - c.Rank()
		c.Isend(other, 6, refs)
		p, st := c.Recv(mpi.AnySource, 6)
		got, ok := p.(transport.SampleRefs)
		if !ok {
			return fmt.Errorf("refs arrived as %T with status %+v", p, st)
		}
		if len(got) != len(refs) {
			return fmt.Errorf("refs count %d, want %d", len(got), len(refs))
		}
		for i := range got {
			if got[i] != refs[i] {
				return fmt.Errorf("ref %d = %d, want %d", i, got[i], refs[i])
			}
		}
		return nil
	})

	run("LargeBatchPayloadIntegrity", 2, func(c *mpi.Comm) error {
		// A coalesced sample batch big enough to cross the TCP compression
		// threshold: whether it travels plain or as KindDataZ is the
		// backend's business — the decoded samples must be bit-identical.
		samples := make([]data.Sample, 64)
		for i := range samples {
			samples[i] = data.Sample{
				ID: i + c.Rank()*1000, Label: i % 7,
				Features: []float32{float32(i), -1.5, float32(c.Rank()), float32(i) * 0.25},
				Bytes:    100,
			}
		}
		other := 1 - c.Rank()
		c.Isend(other, 8, data.EncodeSampleBatch(samples))
		p, _ := c.Recv(other, 8)
		got, err := data.DecodeSampleBatch(p.([]byte))
		if err != nil {
			return err
		}
		if len(got) != len(samples) {
			return fmt.Errorf("batch length %d, want %d", len(got), len(samples))
		}
		for i, s := range got {
			if s.ID != i+other*1000 || s.Features[3] != float32(i)*0.25 {
				return fmt.Errorf("sample %d mangled: %+v", i, s)
			}
		}
		return nil
	})

	run("GradientAllreduce", 3, func(c *mpi.Comm) error {
		buf := make([]float32, 4097) // not divisible by world size
		for i := range buf {
			buf[i] = float32(c.Rank() + 1)
		}
		mpi.Allreduce(c, buf, mpi.OpSum)
		for i, v := range buf {
			if v != 6 {
				return fmt.Errorf("buf[%d] = %v, want 6", i, v)
			}
		}
		return nil
	})
}
