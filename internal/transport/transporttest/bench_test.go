package transporttest_test

import (
	"testing"

	"plshuffle/internal/mpi"
	"plshuffle/internal/transport/transporttest"
)

// runAlltoallBench measures personalized all-to-all throughput over one
// backend: every rank sends elems float32s to every other rank per
// operation, the exchange scheduler's wire pattern. Comparing the inproc
// and tcp numbers isolates the cost of the real wire path (codec + framing
// + sockets) against pure in-memory delivery.
func runAlltoallBench(b *testing.B, bk transporttest.Backend, ranks, elems int) {
	b.SetBytes(int64(ranks * (ranks - 1) * elems * 4)) // payload bytes crossing rank boundaries per op
	err := bk.Run(ranks, func(c *mpi.Comm) error {
		send := make([][]float32, c.Size())
		for d := range send {
			send[d] = make([]float32, elems)
			for i := range send[d] {
				send[d][i] = float32(c.Rank()*elems + i)
			}
		}
		c.Barrier()
		for i := 0; i < b.N; i++ {
			out := mpi.Alltoall(c, send)
			if len(out[0]) != elems {
				b.Errorf("alltoall returned %d elements from rank 0, want %d", len(out[0]), elems)
			}
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkAlltoallInproc(b *testing.B) { runAlltoallBench(b, transporttest.Inproc(), 4, 16<<10) }
func BenchmarkAlltoallTCP(b *testing.B)    { runAlltoallBench(b, transporttest.TCP(), 4, 16<<10) }
