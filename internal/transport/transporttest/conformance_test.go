package transporttest_test

import (
	"testing"
	"time"

	"plshuffle/internal/transport"
	"plshuffle/internal/transport/faultinject"
	"plshuffle/internal/transport/tcp"
	"plshuffle/internal/transport/transporttest"
)

func TestInprocConformance(t *testing.T) {
	transporttest.RunTransportTests(t, transporttest.Inproc())
}

func TestTCPConformance(t *testing.T) {
	transporttest.RunTransportTests(t, transporttest.TCP())
}

func TestInprocCloseSemantics(t *testing.T) {
	transporttest.RunCloseSemanticsTests(t, transporttest.Inproc())
}

func TestTCPCloseSemantics(t *testing.T) {
	transporttest.RunCloseSemanticsTests(t, transporttest.TCP())
}

// delayWrap injects random frame delays on every rank: a semantics-
// preserving fault (delayed-but-ordered delivery), so the FULL conformance
// suite must still pass through the injector. This is the transparency
// claim the chaos soak builds on — delays alone never change results.
func delayWrap(rank int, inner transport.Conn) transport.Conn {
	return faultinject.New(inner, faultinject.Script{
		Seed:      0xD0 + int64(rank),
		DelayProb: 0.25,
		MaxDelay:  2 * time.Millisecond,
	})
}

func TestInprocConformanceUnderInjectedDelays(t *testing.T) {
	transporttest.RunTransportTests(t, transporttest.InprocWrapped("inproc+delay", delayWrap))
}

func TestTCPConformanceUnderInjectedDelays(t *testing.T) {
	transporttest.RunTransportTests(t, transporttest.TCPWrapped("tcp+delay", delayWrap, nil))
}

func TestInprocCloseSemanticsUnderInjectedDelays(t *testing.T) {
	transporttest.RunCloseSemanticsTests(t, transporttest.InprocWrapped("inproc+delay", delayWrap))
}

// compressHook opts every rank into wirecomp payload compression — the full
// conformance suite must pass unchanged when large data frames travel as
// KindDataZ, because compression is invisible above the transport.
func compressHook(rank int, cfg *tcp.Config) { cfg.Compress = true }

func TestTCPConformanceCompressed(t *testing.T) {
	transporttest.RunTransportTests(t, transporttest.TCPWrapped("tcp+z", nil, compressHook))
}

// Compression and injected delays stacked: the delay injector sits above the
// compressed wire, so reordering-free delayed delivery of KindDataZ frames
// must still satisfy every FIFO and matching guarantee.
func TestTCPConformanceCompressedUnderInjectedDelays(t *testing.T) {
	transporttest.RunTransportTests(t, transporttest.TCPWrapped("tcp+z+delay", delayWrap, compressHook))
}

func TestTCPCloseSemanticsCompressed(t *testing.T) {
	transporttest.RunCloseSemanticsTests(t, transporttest.TCPWrapped("tcp+z", nil, compressHook))
}
