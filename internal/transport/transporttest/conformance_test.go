package transporttest_test

import (
	"testing"

	"plshuffle/internal/transport/transporttest"
)

func TestInprocConformance(t *testing.T) {
	transporttest.RunTransportTests(t, transporttest.Inproc())
}

func TestTCPConformance(t *testing.T) {
	transporttest.RunTransportTests(t, transporttest.TCP())
}
