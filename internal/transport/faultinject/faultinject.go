// Package faultinject wraps any transport.Conn with deterministic, seeded
// fault injection — the chaos layer of the fault-tolerance suite (DESIGN.md
// §10). A Script describes WHAT goes wrong (frame delays, drops,
// duplications, connection resets, a scripted rank crash) and a seed pins
// WHEN, so a failing chaos run reproduces exactly from its seed.
//
// The injector sits between the mpi runtime and the real backend and
// perturbs only the OUTBOUND path — which is sufficient, because delaying
// or dropping a frame at the sender is indistinguishable (to the peer) from
// the same fault in the network. Backend-internal traffic that never passes
// through Send (the TCP backend's heartbeats) is deliberately not faulted:
// liveness probes model the detector, not the workload.
//
// Fault classes and who may survive them:
//
//   - Delay: frames toward a destination are held for a random duration and
//     then delivered IN ORDER (a per-destination queue preserves the
//     non-overtaking guarantee). Every layer above must survive arbitrary
//     delays; the chaos soak asserts bit-exact training results under them.
//   - Reset: every Nth frame, the wrapped backend's established connections
//     are torn down via transport.Resetter (TCP redials within its retry
//     budget; backends without connections ignore it). Survivable by
//     construction — a reset is a blip, not a death.
//   - Crash: on the Nth outbound frame carrying a given tag, the endpoint
//     is killed (transport.Killer) exactly as SIGKILL would — the scripted
//     rank dies mid-phase and its peers must detect and degrade. Because
//     the PLS exchange stamps frames with the epoch as tag, "die on the
//     k-th exchange frame of epoch e" — i.e. mid-Communicate — is directly
//     expressible.
//   - Drop / duplicate: a frame silently vanishes or arrives twice. These
//     violate the reliable-delivery contract the mpi matching engine is
//     built on, so they are for transport-level tests with counting
//     handlers — NOT for end-to-end training runs, which are entitled to
//     assume TCP-like delivery.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"plshuffle/internal/transport"
)

// ErrCrashed is returned by every Send after the script's crash point. It
// is deliberately NOT a *transport.PeerError: the local rank did not lose a
// peer, it died itself — the mpi layer treats it as a fatal local failure
// and unwinds the rank, while the peers detect the death through their own
// transports.
var ErrCrashed = errors.New("faultinject: rank crashed by script")

// Script is a deterministic fault plan for one rank's endpoint. The zero
// Script injects nothing: a wrapped connection behaves exactly like the
// inner one (the conformance tests pin this transparency).
type Script struct {
	// Seed drives every probabilistic decision. Two connections with equal
	// scripts and equal Send sequences inject identical faults.
	Seed int64

	// DelayProb is the per-frame probability of holding a frame for a
	// uniform random duration in (0, MaxDelay]. Any positive DelayProb
	// routes ALL outbound frames through per-destination ordering queues so
	// delayed frames cannot be overtaken.
	DelayProb float64
	// MaxDelay bounds one injected delay. Required when DelayProb > 0.
	MaxDelay time.Duration

	// DropProb is the per-frame probability of silently discarding a frame.
	// Breaks reliable delivery — transport-level tests only.
	DropProb float64
	// DupProb is the per-frame probability of sending a frame twice.
	// Breaks exactly-once delivery — transport-level tests only.
	DupProb float64

	// ResetEvery, when positive, tears down the inner backend's established
	// connections (transport.Resetter) on every Nth outbound frame. Ignored
	// for backends without connections.
	ResetEvery int

	// CrashCount, when positive, kills the endpoint on the CrashCount-th
	// outbound frame whose tag equals CrashTag (1-based; the triggering
	// frame is lost, as a real mid-send death would lose it).
	CrashCount int
	// CrashTag selects which frames advance the crash counter. The PLS
	// exchange uses the epoch number as tag, so CrashTag=e targets epoch
	// e's Communicate phase.
	CrashTag int
}

// Validate reports the first nonsensical script field.
func (s Script) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"DelayProb", s.DelayProb}, {"DropProb", s.DropProb}, {"DupProb", s.DupProb}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faultinject: %s = %v outside [0,1]", p.name, p.v)
		}
	}
	if s.DelayProb > 0 && s.MaxDelay <= 0 {
		return fmt.Errorf("faultinject: DelayProb = %v requires a positive MaxDelay", s.DelayProb)
	}
	if s.ResetEvery < 0 {
		return fmt.Errorf("faultinject: ResetEvery = %d is negative", s.ResetEvery)
	}
	if s.CrashCount < 0 {
		return fmt.Errorf("faultinject: CrashCount = %d is negative", s.CrashCount)
	}
	return nil
}

// Injected is a snapshot of the faults the injector has committed so far —
// what a chaos test asserts against.
type Injected struct {
	Frames  int64 // outbound frames observed (dropped ones included)
	Delays  int64
	Drops   int64
	Dups    int64
	Resets  int64 // resets actually applied (inner implements Resetter)
	Crashed bool
}

// Conn interposes a Script between the caller and an inner transport.Conn.
// Create it with New.
type Conn struct {
	inner  transport.Conn
	script Script

	mu       sync.Mutex
	rng      *rand.Rand
	tagSeen  int // sends matching CrashTag so far
	crashed  bool
	closed   bool
	queues   map[int]*delayQueue
	asyncErr map[int]error // first delayed-send failure per destination
	inj      Injected

	stopCh chan struct{} // closed on Close/Kill; cancels pending delays

	failMu   sync.Mutex
	onFail   func(transport.PeerError)
	notified map[int]bool
}

// New wraps inner with the script's faults. It panics on an invalid script
// (a chaos harness bug, not a runtime condition). The wrapper delegates
// Stats, failure notification, and Kill to the inner connection, so it can
// stand in anywhere a transport.Conn is expected:
//
//	comm, err := mpi.Connect(func(h transport.Handler) (transport.Conn, error) {
//	        inner, err := tcp.New(cfg, h)
//	        if err != nil {
//	                return nil, err
//	        }
//	        return faultinject.New(inner, script), nil
//	})
func New(inner transport.Conn, script Script) *Conn {
	if err := script.Validate(); err != nil {
		panic(err)
	}
	c := &Conn{
		inner:    inner,
		script:   script,
		rng:      rand.New(rand.NewSource(script.Seed)),
		asyncErr: make(map[int]error),
		notified: make(map[int]bool),
		stopCh:   make(chan struct{}),
	}
	if script.DelayProb > 0 {
		c.queues = make(map[int]*delayQueue)
	}
	if fn, ok := inner.(transport.FailureNotifier); ok {
		fn.OnPeerFailure(c.notify)
	}
	return c
}

// Rank returns the inner connection's rank.
func (c *Conn) Rank() int { return c.inner.Rank() }

// Size returns the inner connection's world size.
func (c *Conn) Size() int { return c.inner.Size() }

// Stats delegates to the inner connection: dropped frames were never sent,
// duplicated frames really were sent twice.
func (c *Conn) Stats() transport.Stats { return c.inner.Stats() }

// Underlying exposes the wrapped connection (transport.Unwrapper), so
// observability type-assertions (KindStatser, LivenessStatser) reach the
// real backend through the injector.
func (c *Conn) Underlying() transport.Conn { return c.inner }

var _ transport.Unwrapper = (*Conn)(nil)

// Injected returns a snapshot of the committed faults.
func (c *Conn) Injected() Injected {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inj
}

// decision is one frame's fate, drawn under the injector lock so the RNG
// consumption order is the Send call order.
type decision struct {
	crash bool
	reset bool
	drop  bool
	dup   bool
	delay time.Duration
}

func (c *Conn) decide(tag int) (decision, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return decision{}, ErrCrashed
	}
	if c.closed {
		return decision{}, fmt.Errorf("faultinject: Send on closed connection (rank %d)", c.inner.Rank())
	}
	var d decision
	c.inj.Frames++
	s := &c.script
	if s.CrashCount > 0 && tag == s.CrashTag {
		if c.tagSeen++; c.tagSeen == s.CrashCount {
			d.crash = true
			c.crashed = true
			c.inj.Crashed = true
			return d, nil // the dying send delivers nothing else
		}
	}
	if s.ResetEvery > 0 && c.inj.Frames%int64(s.ResetEvery) == 0 {
		d.reset = true
	}
	if s.DropProb > 0 && c.rng.Float64() < s.DropProb {
		d.drop = true
		c.inj.Drops++
		return d, nil
	}
	if s.DupProb > 0 && c.rng.Float64() < s.DupProb {
		d.dup = true
		c.inj.Dups++
	}
	if s.DelayProb > 0 && c.rng.Float64() < s.DelayProb {
		d.delay = time.Duration(c.rng.Int63n(int64(s.MaxDelay))) + 1
		c.inj.Delays++
	}
	return d, nil
}

// Send applies the script to one outbound frame and forwards the survivors
// to the inner connection. When delays are enabled every frame rides the
// destination's ordering queue (delayed or not), so the non-overtaking
// guarantee holds; queue-path failures surface on the NEXT Send toward that
// destination, mirroring how wire backends report asynchronous write
// failures.
func (c *Conn) Send(dst, tag int, payload any) error {
	d, err := c.decide(tag)
	if err != nil {
		return err
	}
	if d.crash {
		c.crash()
		return ErrCrashed
	}
	if d.reset {
		if r, ok := c.inner.(transport.Resetter); ok {
			r.ResetPeers()
			c.mu.Lock()
			c.inj.Resets++
			c.mu.Unlock()
		}
	}
	if d.drop {
		return nil
	}
	if c.queues != nil {
		c.mu.Lock()
		if err := c.asyncErr[dst]; err != nil {
			c.mu.Unlock()
			return err
		}
		dq := c.queues[dst]
		if dq == nil {
			dq = newDelayQueue(c, dst)
			c.queues[dst] = dq
		}
		c.mu.Unlock()
		// The inner Send is deferred, so the caller's buffer must be
		// defensively copied now (transport contract: buffers are reusable
		// the moment Send returns). Types ClonePayload does not cover pass
		// by reference and must be treated as immutable, as with inproc.
		p := transport.ClonePayload(payload)
		if err := dq.enqueue(tag, p, d.delay); err != nil {
			return err
		}
		if d.dup {
			return dq.enqueue(tag, transport.ClonePayload(p), 0)
		}
		return nil
	}
	if err := c.inner.Send(dst, tag, payload); err != nil {
		return err
	}
	if d.dup {
		return c.inner.Send(dst, tag, payload)
	}
	return nil
}

// crash kills the endpoint mid-send: pending delayed frames are discarded
// (a dead process delivers nothing) and the inner connection is torn down
// as SIGKILL would tear it.
func (c *Conn) crash() {
	// Kill the inner endpoint FIRST: a frame sleeping out its delay when
	// the process dies must find a dead transport when it wakes, not sneak
	// onto the wire post-mortem.
	if k, ok := c.inner.(transport.Killer); ok {
		k.Kill()
	} else {
		c.inner.Close()
	}
	close(c.stopCh)
	c.mu.Lock()
	queues := mapValues(c.queues)
	c.mu.Unlock()
	for _, dq := range queues {
		dq.discard()
	}
	for _, dq := range queues {
		<-dq.done
	}
}

// Close drains the delay queues — pending frames are delivered promptly,
// their remaining delays cancelled — and closes the inner connection.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed || c.crashed {
		c.mu.Unlock()
		return c.inner.Close()
	}
	c.closed = true
	queues := mapValues(c.queues)
	c.mu.Unlock()
	close(c.stopCh) // cancel in-progress delays; frames still deliver
	for _, dq := range queues {
		dq.drain()
	}
	return c.inner.Close()
}

// Kill implements transport.Killer: queued frames are discarded and the
// inner endpoint dies instantly.
func (c *Conn) Kill() {
	c.mu.Lock()
	if c.crashed || c.closed {
		c.mu.Unlock()
		if k, ok := c.inner.(transport.Killer); ok {
			k.Kill()
		}
		return
	}
	c.crashed = true
	c.mu.Unlock()
	c.crash()
}

// OnPeerFailure implements transport.FailureNotifier: callbacks from the
// inner backend and from asynchronous queue-path failures are forwarded, at
// most once per peer.
func (c *Conn) OnPeerFailure(cb func(transport.PeerError)) {
	c.failMu.Lock()
	c.onFail = cb
	c.failMu.Unlock()
}

func (c *Conn) notify(pe transport.PeerError) {
	c.failMu.Lock()
	cb := c.onFail
	dup := c.notified[pe.Rank]
	c.notified[pe.Rank] = true
	c.failMu.Unlock()
	if cb != nil && !dup {
		cb(pe)
	}
}

// noteAsyncErr records a delayed send's failure so the next Send toward dst
// surfaces it, and feeds peer failures into the notification path.
func (c *Conn) noteAsyncErr(dst int, err error) {
	c.mu.Lock()
	if c.asyncErr[dst] == nil {
		c.asyncErr[dst] = err
	}
	c.mu.Unlock()
	if pe, ok := transport.AsPeerError(err); ok {
		c.notify(*pe)
	}
}

func mapValues(m map[int]*delayQueue) []*delayQueue {
	out := make([]*delayQueue, 0, len(m))
	for _, dq := range m {
		out = append(out, dq)
	}
	return out
}

var (
	_ transport.Conn            = (*Conn)(nil)
	_ transport.FailureNotifier = (*Conn)(nil)
	_ transport.Killer          = (*Conn)(nil)
)

// delayQueue serializes all frames toward one destination through a single
// worker goroutine, preserving per-(src,dst) FIFO order while individual
// frames sleep out their injected delays.
type delayQueue struct {
	c    *Conn
	dst  int
	done chan struct{}

	mu       sync.Mutex
	cond     *sync.Cond
	q        []delayed
	inflight bool
	stop     bool
}

type delayed struct {
	tag     int
	payload any
	delay   time.Duration
}

func newDelayQueue(c *Conn, dst int) *delayQueue {
	dq := &delayQueue{c: c, dst: dst, done: make(chan struct{})}
	dq.cond = sync.NewCond(&dq.mu)
	go dq.run()
	return dq
}

func (dq *delayQueue) enqueue(tag int, payload any, delay time.Duration) error {
	dq.mu.Lock()
	defer dq.mu.Unlock()
	if dq.stop {
		return fmt.Errorf("faultinject: Send to rank %d on stopped queue", dq.dst)
	}
	dq.q = append(dq.q, delayed{tag: tag, payload: payload, delay: delay})
	dq.cond.Signal()
	return nil
}

func (dq *delayQueue) run() {
	defer close(dq.done)
	for {
		dq.mu.Lock()
		for len(dq.q) == 0 && !dq.stop {
			dq.cond.Wait()
		}
		if len(dq.q) == 0 {
			dq.mu.Unlock()
			return
		}
		f := dq.q[0]
		dq.q = dq.q[1:]
		dq.inflight = true
		dq.mu.Unlock()
		if f.delay > 0 {
			t := time.NewTimer(f.delay)
			select {
			case <-t.C:
			case <-dq.c.stopCh:
				t.Stop() // delay cancelled; the frame still delivers
			}
		}
		if err := dq.c.inner.Send(dq.dst, f.tag, f.payload); err != nil {
			dq.c.noteAsyncErr(dq.dst, err)
		}
		dq.mu.Lock()
		dq.inflight = false
		dq.cond.Broadcast()
		dq.mu.Unlock()
	}
}

// drain blocks until every queued frame has been handed to the inner
// connection, then stops the worker.
func (dq *delayQueue) drain() {
	dq.mu.Lock()
	for len(dq.q) > 0 || dq.inflight {
		dq.cond.Wait()
	}
	dq.stop = true
	dq.cond.Broadcast()
	dq.mu.Unlock()
	<-dq.done
}

// discard throws queued frames away and stops the worker — the crash path.
func (dq *delayQueue) discard() {
	dq.mu.Lock()
	dq.q = nil
	dq.stop = true
	dq.cond.Broadcast()
	dq.mu.Unlock()
}
