package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"

	"plshuffle/internal/transport"
)

// fakeConn records every frame the injector lets through and implements the
// optional fault interfaces so delegation is observable.
type fakeConn struct {
	rank, size int

	mu     sync.Mutex
	frames []transport.Frame
	killed bool
	closed bool
	resets int
	onFail func(transport.PeerError)
}

func newFake(rank, size int) *fakeConn { return &fakeConn{rank: rank, size: size} }

func (f *fakeConn) Rank() int { return f.rank }
func (f *fakeConn) Size() int { return f.size }

func (f *fakeConn) Send(dst, tag int, payload any) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.killed {
		return &transport.PeerError{Rank: dst, Phase: transport.PhaseSend}
	}
	f.frames = append(f.frames, transport.Frame{Src: f.rank, Dst: dst, Tag: tag, Payload: payload})
	return nil
}

func (f *fakeConn) Stats() transport.Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return transport.Stats{FramesSent: int64(len(f.frames))}
}

func (f *fakeConn) Close() error {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	return nil
}

func (f *fakeConn) Kill() {
	f.mu.Lock()
	f.killed = true
	f.mu.Unlock()
}

func (f *fakeConn) ResetPeers() {
	f.mu.Lock()
	f.resets++
	f.mu.Unlock()
}

func (f *fakeConn) OnPeerFailure(cb func(transport.PeerError)) {
	f.mu.Lock()
	f.onFail = cb
	f.mu.Unlock()
}

func (f *fakeConn) snapshot() []transport.Frame {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]transport.Frame(nil), f.frames...)
}

func TestValidateRejectsBadScripts(t *testing.T) {
	bad := []Script{
		{DelayProb: -0.1},
		{DelayProb: 1.5, MaxDelay: time.Millisecond},
		{DelayProb: 0.5}, // missing MaxDelay
		{DropProb: 2},
		{DupProb: -1},
		{ResetEvery: -3},
		{CrashCount: -1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("script %d (%+v) accepted", i, s)
		}
	}
	good := []Script{
		{},
		{Seed: 7, DelayProb: 0.3, MaxDelay: time.Millisecond, DropProb: 0.1, DupProb: 0.1, ResetEvery: 5, CrashCount: 2, CrashTag: 1},
	}
	for i, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("script %d rejected: %v", i, err)
		}
	}
}

func TestZeroScriptIsTransparent(t *testing.T) {
	fake := newFake(0, 4)
	c := New(fake, Script{})
	for i := 0; i < 50; i++ {
		if err := c.Send(i%4, i, i); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	frames := fake.snapshot()
	if len(frames) != 50 {
		t.Fatalf("inner saw %d frames, want 50", len(frames))
	}
	for i, f := range frames {
		if f.Dst != i%4 || f.Tag != i || f.Payload.(int) != i {
			t.Fatalf("frame %d perturbed: %+v", i, f)
		}
	}
	inj := c.Injected()
	if inj.Delays != 0 || inj.Drops != 0 || inj.Dups != 0 || inj.Resets != 0 || inj.Crashed {
		t.Fatalf("zero script injected faults: %+v", inj)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(1, 0, 0); err == nil {
		t.Fatal("Send after Close returned nil")
	}
}

func TestDropAndDupCounts(t *testing.T) {
	fake := newFake(0, 2)
	c := New(fake, Script{Seed: 1, DropProb: 1})
	for i := 0; i < 20; i++ {
		if err := c.Send(1, 0, i); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(fake.snapshot()); got != 0 {
		t.Fatalf("DropProb=1 delivered %d frames, want 0", got)
	}
	if inj := c.Injected(); inj.Drops != 20 || inj.Frames != 20 {
		t.Fatalf("injected = %+v, want 20 drops of 20 frames", inj)
	}

	fake2 := newFake(0, 2)
	c2 := New(fake2, Script{Seed: 1, DupProb: 1})
	for i := 0; i < 20; i++ {
		if err := c2.Send(1, 0, i); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(fake2.snapshot()); got != 40 {
		t.Fatalf("DupProb=1 delivered %d frames, want 40", got)
	}
	if inj := c2.Injected(); inj.Dups != 20 {
		t.Fatalf("injected = %+v, want 20 dups", inj)
	}
}

func TestDelayPreservesPerDestinationOrder(t *testing.T) {
	fake := newFake(0, 3)
	c := New(fake, Script{Seed: 99, DelayProb: 0.6, MaxDelay: 2 * time.Millisecond})
	const per = 60
	for i := 0; i < per; i++ {
		for dst := 0; dst < 3; dst++ { // self-sends ride the queue too
			if err := c.Send(dst, 0, dst*1000+i); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.Close(); err != nil { // Close drains every queue
		t.Fatal(err)
	}
	frames := fake.snapshot()
	if len(frames) != 3*per {
		t.Fatalf("delivered %d frames, want %d", len(frames), 3*per)
	}
	next := map[int]int{}
	for _, f := range frames {
		want := f.Dst*1000 + next[f.Dst]
		if f.Payload.(int) != want {
			t.Fatalf("dst %d: frame overtook: got %v, want %d", f.Dst, f.Payload, want)
		}
		next[f.Dst]++
	}
	if inj := c.Injected(); inj.Delays == 0 {
		t.Fatal("no delays injected despite DelayProb=0.6")
	}
}

func TestDelayClonesPayload(t *testing.T) {
	fake := newFake(0, 2)
	c := New(fake, Script{Seed: 3, DelayProb: 1, MaxDelay: 5 * time.Millisecond})
	buf := []int{1, 2, 3}
	if err := c.Send(1, 0, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99 // mutate while the frame sleeps in the delay queue
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	frames := fake.snapshot()
	if len(frames) != 1 {
		t.Fatalf("delivered %d frames, want 1", len(frames))
	}
	if got := frames[0].Payload.([]int)[0]; got != 1 {
		t.Fatalf("delayed frame saw caller's mutation: %d", got)
	}
}

func TestCrashAtTagCount(t *testing.T) {
	fake := newFake(2, 4)
	c := New(fake, Script{Seed: 5, CrashTag: 7, CrashCount: 3})
	// Frames with other tags do not advance the crash counter.
	for i := 0; i < 5; i++ {
		if err := c.Send(0, 1, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Send(0, 7, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(1, 7, 1); err != nil {
		t.Fatal(err)
	}
	// Third tag-7 frame: the endpoint dies mid-send; the frame is lost.
	if err := c.Send(3, 7, 2); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash send returned %v, want ErrCrashed", err)
	}
	if !fake.killed {
		t.Fatal("inner endpoint not killed")
	}
	if got := len(fake.snapshot()); got != 7 {
		t.Fatalf("inner saw %d frames, want 7 (crash frame lost)", got)
	}
	if err := c.Send(0, 1, 9); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash send returned %v, want ErrCrashed", err)
	}
	if inj := c.Injected(); !inj.Crashed {
		t.Fatalf("injected = %+v, want Crashed", inj)
	}
}

func TestCrashDiscardsDelayedFrames(t *testing.T) {
	fake := newFake(0, 2)
	c := New(fake, Script{Seed: 8, DelayProb: 1, MaxDelay: time.Hour, CrashTag: 9, CrashCount: 1})
	if err := c.Send(1, 0, 1); err != nil { // sleeps for up to an hour
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- c.Send(1, 9, 2) }()
	select {
	case err := <-done:
		if !errors.Is(err, ErrCrashed) {
			t.Fatalf("crash send returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("crash blocked behind a delayed frame")
	}
	// A dead process delivers nothing: nothing may have reached the inner
	// conn before the crash (the only queued frame had an hour-long delay),
	// and the crash cancelled it.
	if got := len(fake.snapshot()); got != 0 {
		t.Fatalf("crashed endpoint still delivered %d frames", got)
	}
}

func TestResetEveryDelegatesToResetter(t *testing.T) {
	fake := newFake(0, 2)
	c := New(fake, Script{Seed: 2, ResetEvery: 5})
	for i := 0; i < 23; i++ {
		if err := c.Send(1, 0, i); err != nil {
			t.Fatal(err)
		}
	}
	if fake.resets != 4 {
		t.Fatalf("inner saw %d resets, want 4 (every 5th of 23 frames)", fake.resets)
	}
	if inj := c.Injected(); inj.Resets != 4 {
		t.Fatalf("injected = %+v, want 4 resets", inj)
	}
	// All frames still delivered: a reset perturbs connections, not frames.
	if got := len(fake.snapshot()); got != 23 {
		t.Fatalf("delivered %d frames, want 23", got)
	}
}

// TestDeterministicPerSeed pins the reproducibility contract: identical
// (script, send sequence) pairs commit identical faults, and the delivered
// frame sequence is identical run over run.
func TestDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) ([]transport.Frame, Injected) {
		fake := newFake(0, 4)
		c := New(fake, Script{Seed: seed, DropProb: 0.3, DupProb: 0.2, ResetEvery: 7})
		for i := 0; i < 200; i++ {
			if err := c.Send(i%4, i%3, i); err != nil {
				t.Fatal(err)
			}
		}
		return fake.snapshot(), c.Injected()
	}
	fa, ia := run(42)
	fb, ib := run(42)
	if ia != ib {
		t.Fatalf("same seed, different faults: %+v vs %+v", ia, ib)
	}
	if len(fa) != len(fb) {
		t.Fatalf("same seed, different delivery: %d vs %d frames", len(fa), len(fb))
	}
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("same seed, frame %d differs: %+v vs %+v", i, fa[i], fb[i])
		}
	}
	_, ic := run(43)
	if ia == ic {
		t.Fatal("different seeds produced identical fault counts — RNG not seeded")
	}
}

// TestAsyncErrorSurfacesOnNextSend: a delayed frame failing inside the
// queue worker is reported on the next Send toward that destination and
// through the failure-notification path, mirroring wire backends.
func TestAsyncErrorSurfacesOnNextSend(t *testing.T) {
	fake := newFake(0, 2)
	c := New(fake, Script{Seed: 4, DelayProb: 1, MaxDelay: time.Millisecond})
	var mu sync.Mutex
	var notified []transport.PeerError
	c.OnPeerFailure(func(pe transport.PeerError) {
		mu.Lock()
		notified = append(notified, pe)
		mu.Unlock()
	})
	fake.Kill() // every inner Send now fails with a PeerError
	if err := c.Send(1, 0, 1); err != nil {
		t.Fatalf("first send should enqueue cleanly, got %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := c.Send(1, 0, 2)
		if err != nil {
			if _, ok := transport.AsPeerError(err); !ok {
				t.Fatalf("async failure surfaced as %v, want a PeerError", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("async send failure never surfaced")
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	n := len(notified)
	mu.Unlock()
	if n != 1 {
		t.Fatalf("failure notified %d times, want exactly 1", n)
	}
	c.Kill() // discard the poisoned queue; the endpoint is already dead
}
