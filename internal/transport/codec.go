package transport

import (
	"encoding/binary"
	"fmt"
	"math"

	"plshuffle/internal/data"
	"plshuffle/internal/tensor"
)

// Payload type codes. The set covers everything the runtime actually moves
// between ranks: encoded samples and raw byte buffers, gradient and tensor
// float buffers, ID lists, and the scalar types the conformance suite and
// control paths use. The encoding is deterministic (little-endian,
// fixed-width) so a frame's bytes are a pure function of its value —
// the property FuzzFrameRoundTrip pins.
const (
	codeNil     = uint8(0)
	codeBytes   = uint8(1)
	codeFloat32 = uint8(2) // []float32 — gradient buffers
	codeFloat64 = uint8(3) // []float64 — loss/metric reductions
	codeInts    = uint8(4) // []int, as int64 on the wire
	codeInt32s  = uint8(5)
	codeInt64s  = uint8(6)
	codeUint64s = uint8(7)
	codeString  = uint8(8)
	codeInt     = uint8(9)  // scalar int, as int64
	codeFloat   = uint8(10) // scalar float64
	codeBool    = uint8(11)
	codeSample  = uint8(12) // data.Sample via its own deterministic encoding
	codeMatrix  = uint8(13) // *tensor.Matrix: rows, cols, row-major float32s
	// codeSampleRefs: a SampleRefs list as delta uvarints — the compact
	// dedup reference payload (DESIGN.md §13).
	codeSampleRefs = uint8(14)
	// codeQDecision: the shuffle controller's broadcast Q decision
	// (DESIGN.md §16), fixed-width.
	codeQDecision = uint8(15)
)

// QDecision is the closed-loop shuffle controller's per-epoch decision
// (DESIGN.md §16): the group root computes it from gathered epoch stats and
// broadcasts it on a reserved tag before the next Scheduling, so every rank
// re-plans from the shared seed at the same Q. Generation and Epoch let a
// receiver reject a stale decision after a membership change. Reason is a
// canonical code (analysis.ReasonCode); the codec does not interpret it.
type QDecision struct {
	Generation int64
	Epoch      int64
	Q          float64
	Reason     uint8
}

// qDecisionBodyLen is the fixed encoded size after the code byte.
const qDecisionBodyLen = 8 + 8 + 8 + 1

// SampleRefs is the payload of a dedup reference frame: the IDs of samples
// the sender knows the receiver already holds in its exchange side-cache,
// shipped instead of the sample payloads themselves. The IDs must be
// strictly ascending (in uint64 order), which the delta encoding exploits:
// first ID as a uvarint, then each successor as uvarint(id[i]-id[i-1]),
// never zero. The decoder enforces minimal varints and non-zero deltas, so
// every accepted buffer re-encodes byte-identically — the canonical-codec
// property FuzzPayloadRoundTrip pins for all payload types.
type SampleRefs []int64

// appendSampleRefs encodes r after the code byte already placed in dst.
func appendSampleRefs(dst []byte, r SampleRefs) ([]byte, error) {
	prev := uint64(0)
	for i, id := range r {
		v := uint64(id)
		if i == 0 {
			dst = binary.AppendUvarint(dst, v)
		} else {
			if v == prev {
				return dst, fmt.Errorf("transport: SampleRefs not strictly ascending at index %d (id %d)", i, id)
			}
			dst = binary.AppendUvarint(dst, v-prev)
		}
		prev = v
	}
	return dst, nil
}

// minUvarint decodes a minimally-encoded uvarint: non-minimal encodings
// (a multi-byte varint whose last group is zero) and overflows are
// rejected so decode→re-encode is the identity.
func minUvarint(buf []byte) (uint64, int, bool) {
	v, n := binary.Uvarint(buf)
	if n <= 0 || (n > 1 && buf[n-1] == 0) {
		return 0, 0, false
	}
	return v, n, true
}

func decodeSampleRefs(body []byte) (SampleRefs, error) {
	out := SampleRefs{}
	prev := uint64(0)
	for i := 0; len(body) > 0; i++ {
		v, n, ok := minUvarint(body)
		if !ok {
			return nil, fmt.Errorf("transport: SampleRefs entry %d: malformed varint", i)
		}
		body = body[n:]
		if i == 0 {
			prev = v
		} else {
			if v == 0 {
				return nil, fmt.Errorf("transport: SampleRefs entry %d: zero delta", i)
			}
			prev += v
		}
		out = append(out, int64(prev))
	}
	return out, nil
}

func uvarintLen(v uint64) int64 {
	n := int64(1)
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// EncodePayload serializes a payload value for a wire backend. The first
// byte is a type code; the rest is the value. It returns an error for types
// outside the wire-encodable set — such payloads work on the inproc backend
// (passed by reference) but cannot cross a process boundary.
func EncodePayload(p any) ([]byte, error) {
	return AppendPayload(make([]byte, 0, PayloadWireSize(p)), p)
}

// AppendPayload is the allocation-free core of EncodePayload: it appends the
// encoding to dst (growing it if needed) and returns the extended slice.
// Hot paths pass a pooled or reused buffer so the steady state allocates
// nothing; the bytes produced are identical to EncodePayload's.
func AppendPayload(dst []byte, p any) ([]byte, error) {
	switch v := p.(type) {
	case nil:
		return append(dst, codeNil), nil
	case []byte:
		dst = append(dst, codeBytes)
		return append(dst, v...), nil
	case []float32:
		dst = append(dst, codeFloat32)
		for _, f := range v {
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(f))
		}
		return dst, nil
	case []float64:
		dst = append(dst, codeFloat64)
		for _, f := range v {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
		}
		return dst, nil
	case []int:
		dst = append(dst, codeInts)
		for _, x := range v {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(x)))
		}
		return dst, nil
	case []int32:
		dst = append(dst, codeInt32s)
		for _, x := range v {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(x))
		}
		return dst, nil
	case []int64:
		dst = append(dst, codeInt64s)
		for _, x := range v {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(x))
		}
		return dst, nil
	case []uint64:
		dst = append(dst, codeUint64s)
		for _, x := range v {
			dst = binary.LittleEndian.AppendUint64(dst, x)
		}
		return dst, nil
	case string:
		dst = append(dst, codeString)
		return append(dst, v...), nil
	case int:
		dst = append(dst, codeInt)
		return binary.LittleEndian.AppendUint64(dst, uint64(int64(v))), nil
	case float64:
		dst = append(dst, codeFloat)
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v)), nil
	case bool:
		b := byte(0)
		if v {
			b = 1
		}
		return append(dst, codeBool, b), nil
	case SampleRefs:
		dst = append(dst, codeSampleRefs)
		return appendSampleRefs(dst, v)
	case QDecision:
		dst = append(dst, codeQDecision)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v.Generation))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v.Epoch))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.Q))
		return append(dst, v.Reason), nil
	case data.Sample:
		dst = append(dst, codeSample)
		return v.AppendEncode(dst), nil
	case *tensor.Matrix:
		if v == nil {
			return append(dst, codeNil), nil
		}
		dst = append(dst, codeMatrix)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v.Rows))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v.Cols))
		for _, f := range v.Data {
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(f))
		}
		return dst, nil
	default:
		return dst, fmt.Errorf("transport: payload type %T is not wire-encodable", p)
	}
}

// DecodePayload parses an EncodePayload buffer back into the corresponding
// Go value. Malformed input returns an error; it never panics.
func DecodePayload(buf []byte) (any, error) {
	if len(buf) == 0 {
		return nil, fmt.Errorf("transport: empty payload")
	}
	code, body := buf[0], buf[1:]
	switch code {
	case codeNil:
		if len(body) != 0 {
			return nil, fmt.Errorf("transport: nil payload with %d trailing bytes", len(body))
		}
		return nil, nil
	case codeBytes:
		out := make([]byte, len(body))
		copy(out, body)
		return out, nil
	case codeFloat32:
		if len(body)%4 != 0 {
			return nil, fmt.Errorf("transport: float32 payload length %d not a multiple of 4", len(body))
		}
		out := make([]float32, len(body)/4)
		for i := range out {
			out[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[4*i:]))
		}
		return out, nil
	case codeFloat64:
		if len(body)%8 != 0 {
			return nil, fmt.Errorf("transport: float64 payload length %d not a multiple of 8", len(body))
		}
		out := make([]float64, len(body)/8)
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
		}
		return out, nil
	case codeInts:
		if len(body)%8 != 0 {
			return nil, fmt.Errorf("transport: int payload length %d not a multiple of 8", len(body))
		}
		out := make([]int, len(body)/8)
		for i := range out {
			out[i] = int(int64(binary.LittleEndian.Uint64(body[8*i:])))
		}
		return out, nil
	case codeInt32s:
		if len(body)%4 != 0 {
			return nil, fmt.Errorf("transport: int32 payload length %d not a multiple of 4", len(body))
		}
		out := make([]int32, len(body)/4)
		for i := range out {
			out[i] = int32(binary.LittleEndian.Uint32(body[4*i:]))
		}
		return out, nil
	case codeInt64s:
		if len(body)%8 != 0 {
			return nil, fmt.Errorf("transport: int64 payload length %d not a multiple of 8", len(body))
		}
		out := make([]int64, len(body)/8)
		for i := range out {
			out[i] = int64(binary.LittleEndian.Uint64(body[8*i:]))
		}
		return out, nil
	case codeUint64s:
		if len(body)%8 != 0 {
			return nil, fmt.Errorf("transport: uint64 payload length %d not a multiple of 8", len(body))
		}
		out := make([]uint64, len(body)/8)
		for i := range out {
			out[i] = binary.LittleEndian.Uint64(body[8*i:])
		}
		return out, nil
	case codeString:
		return string(body), nil
	case codeInt:
		if len(body) != 8 {
			return nil, fmt.Errorf("transport: scalar int payload length %d, want 8", len(body))
		}
		return int(int64(binary.LittleEndian.Uint64(body))), nil
	case codeFloat:
		if len(body) != 8 {
			return nil, fmt.Errorf("transport: scalar float payload length %d, want 8", len(body))
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(body)), nil
	case codeBool:
		if len(body) != 1 || body[0] > 1 {
			return nil, fmt.Errorf("transport: malformed bool payload")
		}
		return body[0] == 1, nil
	case codeSampleRefs:
		return decodeSampleRefs(body)
	case codeQDecision:
		if len(body) != qDecisionBodyLen {
			return nil, fmt.Errorf("transport: QDecision payload length %d, want %d", len(body), qDecisionBodyLen)
		}
		return QDecision{
			Generation: int64(binary.LittleEndian.Uint64(body)),
			Epoch:      int64(binary.LittleEndian.Uint64(body[8:])),
			Q:          math.Float64frombits(binary.LittleEndian.Uint64(body[16:])),
			Reason:     body[24],
		}, nil
	case codeSample:
		s, err := data.DecodeSample(body)
		if err != nil {
			return nil, fmt.Errorf("transport: sample payload: %w", err)
		}
		return s, nil
	case codeMatrix:
		if len(body) < 8 {
			return nil, fmt.Errorf("transport: matrix payload truncated")
		}
		rows := int(binary.LittleEndian.Uint32(body))
		cols := int(binary.LittleEndian.Uint32(body[4:]))
		if rows < 0 || cols < 0 || rows*cols < 0 || len(body)-8 != 4*rows*cols ||
			(cols > 0 && rows > MaxFramePayload/4/cols) {
			return nil, fmt.Errorf("transport: matrix payload %dx%d does not match %d data bytes", rows, cols, len(body)-8)
		}
		m := tensor.New(rows, cols)
		for i := range m.Data {
			m.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[8+4*i:]))
		}
		return m, nil
	default:
		return nil, fmt.Errorf("transport: unknown payload type code %d", code)
	}
}

// FrameWireSize returns the exact number of bytes a data frame carrying
// this payload occupies on the wire (length prefix + frame header + encoded
// payload). The codec is deterministic, so this equals what the TCP backend
// actually writes — phase-level byte accounting uses it to attribute wire
// traffic to the operation that caused it, which raw transport counters
// cannot do once frames overlap with compute.
func FrameWireSize(p any) int64 {
	return 4 + wireHeaderLen + PayloadWireSize(p)
}

// PayloadWireSize estimates the encoded size of a payload without
// allocating — the inproc backend's byte accounting. Unknown types count as
// zero bytes (they never cross a wire).
func PayloadWireSize(p any) int64 {
	switch v := p.(type) {
	case nil:
		return 1
	case []byte:
		return int64(1 + len(v))
	case []float32:
		return int64(1 + 4*len(v))
	case []float64:
		return int64(1 + 8*len(v))
	case []int:
		return int64(1 + 8*len(v))
	case []int32:
		return int64(1 + 4*len(v))
	case []int64, []uint64:
		switch w := p.(type) {
		case []int64:
			return int64(1 + 8*len(w))
		case []uint64:
			return int64(1 + 8*len(w))
		}
		return 1
	case string:
		return int64(1 + len(v))
	case int, float64:
		return 9
	case bool:
		return 2
	case SampleRefs:
		n := int64(1)
		prev := uint64(0)
		for i, id := range v {
			if i == 0 {
				n += uvarintLen(uint64(id))
			} else {
				n += uvarintLen(uint64(id) - prev)
			}
			prev = uint64(id)
		}
		return n
	case QDecision:
		return 1 + qDecisionBodyLen
	case data.Sample:
		return int64(1 + 28 + 4*len(v.Features))
	case *tensor.Matrix:
		if v == nil {
			return 1
		}
		return int64(9 + 4*len(v.Data))
	default:
		return 0
	}
}
