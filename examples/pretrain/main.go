// Pretrain/fine-tune (the paper's Figure 8): pretrain on the ImageNet-21K
// proxy with global vs (partial) local shuffling, then fine-tune on the
// ImageNet-1K proxy. Upstream local shuffling loses a few points, but the
// downstream accuracy after fine-tuning is essentially the same — so cheap
// local-style pretraining does not hurt the final task.
//
//	go run ./examples/pretrain
package main

import (
	"fmt"
	"log"

	"plshuffle"
)

func main() {
	up, err := plshuffle.ProxyDataset("imagenet-21k")
	if err != nil {
		log.Fatal(err)
	}
	down, err := plshuffle.ProxyDataset("imagenet-1k")
	if err != nil {
		log.Fatal(err)
	}
	base, err := plshuffle.ProxyModel("resnet50")
	if err != nil {
		log.Fatal(err)
	}
	upModel := base.WithData(up.FeatureDim, up.Classes)
	downModel := base.WithData(down.FeatureDim, down.Classes)

	fmt.Println("upstream: ResNet50 on ImageNet-21K proxy (24 workers, 15 epochs)")
	fmt.Println("downstream: fine-tune on ImageNet-1K proxy (8 workers, global shuffling)")
	fmt.Printf("%-12s  %-13s  %-15s\n", "upstream", "upstream acc", "downstream acc")
	for _, strat := range []plshuffle.Strategy{
		plshuffle.Global(), plshuffle.Local(), plshuffle.Partial(0.1),
	} {
		upRes, err := plshuffle.Train(plshuffle.TrainConfig{
			Workers: 24, Strategy: strat, Dataset: up, Model: upModel,
			Epochs: 15, BatchSize: 16, BaseLR: 0.05, Momentum: 0.9,
			WeightDecay: 1e-4, Seed: 2022, PartitionLocality: 0.6,
		})
		if err != nil {
			log.Fatal(err)
		}

		// Transfer the backbone; the classifier head has a different class
		// count and keeps its fresh initialization.
		warm, err := downModel.Build(2022, 1)
		if err != nil {
			log.Fatal(err)
		}
		plshuffle.TransferWeights(warm.Params(), upRes.FinalParams)
		downRes, err := plshuffle.Train(plshuffle.TrainConfig{
			Workers: 8, Strategy: plshuffle.Global(), Dataset: down, Model: downModel,
			Epochs: 10, BatchSize: 16, BaseLR: 0.02, Momentum: 0.9,
			WeightDecay: 1e-4, Seed: 2025, WarmStart: warm.Params(),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s  %-13.4f  %-15.4f\n", strat, upRes.FinalValAcc, downRes.FinalValAcc)
	}
	fmt.Println("\nExpected shape (paper Fig 8): upstream local < global by a few points,")
	fmt.Println("downstream accuracies nearly identical.")
}
