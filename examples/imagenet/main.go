// ImageNet-50 scaling study: reproduce the paper's most shuffle-sensitive
// result (Figure 5e) on the synthetic proxy — local shuffling collapses as
// workers grow and each shard covers fewer classes, while increasing the
// exchange fraction Q restores global-shuffling accuracy.
//
//	go run ./examples/imagenet
package main

import (
	"fmt"
	"log"
	"math"

	"plshuffle"
)

func main() {
	ds, err := plshuffle.ProxyDataset("imagenet-50")
	if err != nil {
		log.Fatal(err)
	}
	spec, err := plshuffle.ProxyModel("resnet50")
	if err != nil {
		log.Fatal(err)
	}
	model := spec.WithData(ds.FeatureDim, ds.Classes)

	strategies := []plshuffle.Strategy{
		plshuffle.Global(),
		plshuffle.Local(),
		plshuffle.Partial(0.1),
		plshuffle.Partial(0.3),
		plshuffle.Partial(0.7),
	}
	fmt.Println("ResNet50 / ImageNet-50 proxy, 20 epochs; shard divergence grows with scale")
	fmt.Printf("%-8s  %-10s", "workers", "loc")
	for _, s := range strategies {
		fmt.Printf("  %-11s", s)
	}
	fmt.Println()
	for _, workers := range []int{8, 32} {
		spw := len(ds.Train) / workers
		locality := math.Min(1, 18/math.Sqrt(float64(spw)))
		fmt.Printf("%-8d  %-10.2f", workers, locality)
		for _, strat := range strategies {
			res, err := plshuffle.Train(plshuffle.TrainConfig{
				Workers:           workers,
				Strategy:          strat,
				Dataset:           ds,
				Model:             model,
				Epochs:            20,
				BatchSize:         16,
				BaseLR:            0.05,
				Momentum:          0.9,
				WeightDecay:       1e-4,
				Seed:              2022,
				PartitionLocality: locality,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-11.4f", res.FinalValAcc)
		}
		fmt.Println()
	}
	fmt.Println("\nExpected shape (paper Fig 5e): at 8 workers local is close to global;")
	fmt.Println("at 32 workers local collapses and partial-0.7 approaches global again.")
}
