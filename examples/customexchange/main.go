// Custom exchange pipeline: use the low-level building blocks directly —
// a message-passing world, per-worker capacity-accounted stores, and the
// exchange scheduler — without the training harness. This is the shape of
// integration a data-loading system (rather than a full trainer) would
// use, mirroring the paper's PyTorch scheduler lifecycle:
//
//	Scheduling(epoch) → Communicate() → Synchronize() → CleanLocalStorage()
//
//	go run ./examples/customexchange
package main

import (
	"fmt"
	"log"
	"sync"

	"plshuffle"
)

func main() {
	const (
		nSamples = 1024
		workers  = 8
		q        = 0.25
		epochs   = 3
	)
	// Build a dataset and the shared-seed initial partition (Figure 2).
	ds, err := plshuffle.GenerateDataset(plshuffle.DatasetSpec{
		Name: "exchange-demo", NumSamples: nSamples, NumVal: 0,
		Classes: 8, FeatureDim: 4, ClassSep: 3, NoiseStd: 1,
		Bytes: 64 << 10, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	parts, err := plshuffle.Partition(nSamples, workers, 7)
	if err != nil {
		log.Fatal(err)
	}

	stores := make([]*plshuffle.LocalStore, workers)
	var mu sync.Mutex
	moved := make([]int, epochs)

	err = plshuffle.RunWorkers(workers, func(c *plshuffle.Comm) error {
		// Stage this worker's designated samples, with the (1+Q)·N/M
		// capacity bound the paper derives in Section III-A.
		perWorkerBytes := int64(nSamples/workers) * (64 << 10)
		st := plshuffle.NewLocalStore(perWorkerBytes + int64(q*float64(perWorkerBytes)) + 1)
		stores[c.Rank()] = st
		before := map[int]bool{}
		for _, id := range parts[c.Rank()] {
			if err := st.Put(ds.Train[id]); err != nil {
				return err
			}
			before[id] = true
		}
		sched, err := plshuffle.NewScheduler(c, st, q, nSamples, 7)
		if err != nil {
			return err
		}
		for epoch := 0; epoch < epochs; epoch++ {
			if err := sched.Scheduling(epoch); err != nil {
				return err
			}
			// A real integration would call Communicate(chunk) from its
			// training loop to overlap; here we post everything at once.
			if err := sched.Synchronize(); err != nil {
				return err
			}
			if err := sched.CleanLocalStorage(); err != nil {
				return err
			}
			newHere := 0
			for _, id := range st.IDs() {
				if !before[id] {
					newHere++
				}
			}
			mu.Lock()
			moved[epoch] += newHere
			mu.Unlock()
			c.Barrier()
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Verify conservation: the union of all stores is exactly the dataset.
	seen := map[int]bool{}
	for w, st := range stores {
		fmt.Printf("worker %d: %d samples, %d bytes used, peak %d bytes\n",
			w, st.Len(), st.Used(), st.Peak())
		for _, id := range st.IDs() {
			if seen[id] {
				log.Fatalf("sample %d on two workers", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != nSamples {
		log.Fatalf("lost samples: %d of %d present", len(seen), nSamples)
	}
	for e, n := range moved {
		fmt.Printf("after epoch %d: %d samples live on a different worker than at start\n", e, n)
	}
	fmt.Println("conservation holds: every sample lives on exactly one worker")
}
