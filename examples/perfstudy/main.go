// Performance study: regenerate the Figure 9 shape with both performance
// substrates — the calibrated analytic model and the discrete-event
// simulator with emergent stragglers — and check where each strategy's
// storage requirement stops fitting the machines.
//
//	go run ./examples/perfstudy
package main

import (
	"fmt"
	"log"

	"plshuffle"
)

func main() {
	prof, err := plshuffle.PerfProfile("resnet50")
	if err != nil {
		log.Fatal(err)
	}
	w := plshuffle.Workload{
		N:              1_281_167,
		BytesPerSample: 117 << 10,
		LocalBatch:     32,
		Model:          prof,
	}
	abci := plshuffle.ABCI()
	strategies := []plshuffle.Strategy{plshuffle.Global(), plshuffle.Local(), plshuffle.Partial(0.1)}

	fmt.Println("ResNet50 / ImageNet-1K epoch seconds on ABCI (model | simulation)")
	fmt.Printf("%-8s", "workers")
	for _, s := range strategies {
		fmt.Printf("  %-22s", s)
	}
	fmt.Println()
	for _, m := range []int{64, 128, 512, 2048} {
		fmt.Printf("%-8d", m)
		for _, s := range strategies {
			b, err := plshuffle.EpochTime(abci, w, m, s)
			if err != nil {
				log.Fatal(err)
			}
			sim, err := plshuffle.SimulateEpoch(plshuffle.SimConfig{
				Machine: abci, Workload: w, Workers: m, Strategy: s, Seed: 1,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %8.0f | %8.0f  ", b.Total(), sim.EpochTime)
		}
		fmt.Println()
	}

	fmt.Println("\nStorage feasibility (per-worker requirement vs dedicated capacity):")
	for _, mc := range []plshuffle.Machine{abci, plshuffle.Fugaku()} {
		for _, s := range strategies {
			need := plshuffle.StorageRequired(w, 2048, s)
			fmt.Printf("  %-7s %-12s needs %12d bytes/worker at 2048 workers: fits=%v\n",
				mc.Name, s, need, plshuffle.FitsLocalStorage(mc, w, 2048, s))
		}
	}
	fmt.Println("\nGlobal shuffling cannot even be staged on Fugaku's 50 GB node slices,")
	fmt.Println("while partial-0.1 stores ~0.03% of the dataset per worker (Section V-E).")
}
