// Quickstart: train one model with the three shuffling strategies of the
// paper and compare validation accuracy and data movement.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"plshuffle"
)

func main() {
	// A small synthetic classification dataset (16 classes, 2048 samples).
	ds, err := plshuffle.GenerateDataset(plshuffle.DatasetSpec{
		Name: "quickstart", NumSamples: 2048, NumVal: 512,
		Classes: 16, FeatureDim: 24, ClassSep: 4, NoiseStd: 1,
		Bytes: 100 << 10, // pretend each sample is a 100 KiB file
		Seed:  1,
	})
	if err != nil {
		log.Fatal(err)
	}
	model := plshuffle.MLP("quickstart", 64).WithData(ds.FeatureDim, ds.Classes)

	fmt.Println("8 workers, 10 epochs, synchronous SGD with ring allreduce")
	fmt.Printf("%-12s  %-9s  %-14s  %-14s  %-16s\n",
		"strategy", "val acc", "PFS reads", "exchanged", "peak storage")
	for _, strat := range []plshuffle.Strategy{
		plshuffle.Global(),
		plshuffle.Local(),
		plshuffle.Partial(0.1),
	} {
		res, err := plshuffle.Train(plshuffle.TrainConfig{
			Workers:   8,
			Strategy:  strat,
			Dataset:   ds,
			Model:     model,
			Epochs:    10,
			BatchSize: 16,
			BaseLR:    0.1,
			Momentum:  0.9,
			Seed:      42,
		})
		if err != nil {
			log.Fatal(err)
		}
		var pfs, exch int64
		for _, e := range res.Epochs {
			pfs += e.PFSReadBytes
			exch += e.ExchangeBytes
		}
		fmt.Printf("%-12s  %-9.4f  %-14d  %-14d  %-16d\n",
			strat, res.FinalValAcc, pfs, exch, res.PeakStorageBytes)
	}
	fmt.Println("\nGlobal shuffling reads every sample from the shared store each epoch;")
	fmt.Println("local shuffling never moves a sample; partial-0.1 exchanges 10% of each")
	fmt.Println("worker's samples per epoch and needs only (1+Q)·N/M local storage.")
}
