// DeepCAM storage-constrained training: the 8.2 TiB dataset cannot be
// replicated to node-local storage, so global shuffling is infeasible —
// exactly the situation of the paper's Figure 7. This example first checks
// feasibility at paper scale with the machine models, then trains the
// proxy with local and partial shuffling under a hard per-worker storage
// capacity, showing that partial shuffling improves accuracy while staying
// within the (1+Q)·N/M budget.
//
//	go run ./examples/deepcam
package main

import (
	"fmt"
	"log"

	"plshuffle"
)

func main() {
	info, err := plshuffle.PaperDatasetInfo("deepcam")
	if err != nil {
		log.Fatal(err)
	}
	prof, err := plshuffle.PerfProfile("deepcam")
	if err != nil {
		log.Fatal(err)
	}
	workload := plshuffle.Workload{
		N:              int(info.RealN),
		BytesPerSample: info.BytesPerSample(),
		LocalBatch:     8,
		Model:          prof,
		Sequential:     true,
	}
	abci := plshuffle.ABCI()
	const workers = 1024
	fmt.Printf("DeepCAM: %d samples, %d bytes each (%.1f TiB total) on ABCI, %d workers\n",
		info.RealN, info.BytesPerSample(), float64(info.RealBytes)/(1<<40), workers)
	for _, strat := range []plshuffle.Strategy{
		plshuffle.Global(), plshuffle.Local(), plshuffle.Partial(0.5), plshuffle.Partial(0.9),
	} {
		need := plshuffle.StorageRequired(workload, workers, strat)
		fits := plshuffle.FitsLocalStorage(abci, workload, workers, strat)
		fmt.Printf("  %-12s needs %14d bytes/worker  fits 400 GiB local SSD: %v\n", strat, need, fits)
	}
	fmt.Printf("  PFS lower bound for a global epoch: %.0f s (the paper's Fig 7b red line)\n\n",
		plshuffle.PFSLowerBound(abci, info.RealBytes))

	// Proxy training under a hard capacity: the store rejects anything
	// beyond (1+0.9)·N/M sample bytes, so a correct scheduler must stay
	// within the paper's bound to finish at all.
	ds, err := plshuffle.ProxyDataset("deepcam")
	if err != nil {
		log.Fatal(err)
	}
	spec, err := plshuffle.ProxyModel("deepcam")
	if err != nil {
		log.Fatal(err)
	}
	model := spec.WithData(ds.FeatureDim, ds.Classes)
	const m = 16
	perWorkerBytes := ds.TotalBytes() / int64(m)
	capacity := perWorkerBytes + int64(0.9*float64(perWorkerBytes)) + 1

	fmt.Printf("proxy run: %d workers, per-worker capacity %d bytes (1.9x N/M)\n", m, capacity)
	fmt.Printf("%-12s  %-9s  %-9s  %-18s\n", "strategy", "val acc", "best", "peak storage used")
	for _, strat := range []plshuffle.Strategy{
		plshuffle.Local(), plshuffle.Partial(0.25), plshuffle.Partial(0.5), plshuffle.Partial(0.9),
	} {
		res, err := plshuffle.Train(plshuffle.TrainConfig{
			Workers:            m,
			Strategy:           strat,
			Dataset:            ds,
			Model:              model,
			Epochs:             16,
			BatchSize:          8,
			BaseLR:             0.03,
			Momentum:           0.9,
			WeightDecay:        1e-4,
			Seed:               2022,
			PartitionLocality:  0.4,
			LocalCapacityBytes: capacity,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s  %-9.4f  %-9.4f  %d / %d\n",
			strat, res.FinalValAcc, res.BestValAcc, res.PeakStorageBytes, capacity)
	}
	fmt.Println("\nNo global-shuffling row: as in the paper, the dataset exceeds local")
	fmt.Println("storage and PFS-based global shuffling would be prohibitively slow.")
}
